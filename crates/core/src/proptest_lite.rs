//! A minimal property-based testing harness.
//!
//! Part of the zero-dependency substrate: replaces the `proptest` crate
//! for this workspace's 19 property-test files, keeping their source shape
//! (the [`proptest!`] macro, `x in strategy` bindings, `prop_assert*!`,
//! `prop_assume!`) so tests read the same as upstream proptest.
//!
//! What it keeps from proptest: seeded generation via [`Strategy`] values
//! (ranges, [`any`], [`Just`], tuples, [`collection::vec`],
//! [`prop_oneof!`]), a per-test iteration budget ([`ProptestConfig`]),
//! assumption-based rejection, and reproducible failures. What it drops:
//! shrinking. Instead, every failure report carries the test's base seed;
//! setting `PROPTEST_LITE_SEED` to that value replays the exact stream,
//! and `PROPTEST_LITE_CASES` scales the budget up for soak runs.

use crate::rng::{Rng, SampleRange};

/// Per-test configuration: how many passing cases a property must
/// accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases that must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than proptest's 256: these suites run in offline CI on
        // every push; PROPTEST_LITE_CASES scales up for soak testing.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass. Produced by the
/// `prop_assert*!` / `prop_assume!` macros; consumed by [`Runner`].
#[derive(Debug)]
pub enum CaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` precondition did not hold: discard the case and
    /// generate another.
    Reject(String),
}

/// Result type the generated test-case closure returns.
pub type CaseResult = Result<(), CaseError>;

/// Drives one property: seeds the generator, counts passes and
/// rejections, and reports failures with the reproduction seed.
#[derive(Debug)]
pub struct Runner {
    name: &'static str,
    rng: Rng,
    base_seed: u64,
    cases: u32,
    passed: u32,
    rejected: u32,
    started: bool,
}

/// FNV-1a, used to derive a stable per-test seed from its name. A fixed
/// algorithm (not `DefaultHasher`) so recorded failure seeds stay valid
/// across compiler releases.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Runner {
    /// Create a runner for the named property. The base seed comes from
    /// `PROPTEST_LITE_SEED` when set (replaying a recorded failure),
    /// otherwise from a stable hash of the test name; `PROPTEST_LITE_CASES`
    /// overrides the case budget.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let base_seed = std::env::var("PROPTEST_LITE_SEED")
            .ok()
            .and_then(|s| {
                let s = s.trim();
                s.strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| s.parse())
                    .ok()
            })
            .unwrap_or_else(|| fnv1a(name.as_bytes()));
        let cases = std::env::var("PROPTEST_LITE_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases);
        Runner {
            name,
            rng: Rng::seed_from_u64(base_seed),
            base_seed,
            cases,
            passed: 0,
            rejected: 0,
            started: false,
        }
    }

    /// Whether another case should be generated. Call once per loop
    /// iteration; pairs with [`Runner::finish_case`].
    pub fn start_case(&mut self) -> bool {
        if self.started {
            // start_case without finish_case means the body panicked and
            // the panic is unwinding through a caller-written loop; do
            // not mask it. (Normal flow always finishes.)
            self.started = false;
        }
        self.started = true;
        self.passed < self.cases
    }

    /// The generator for this case's strategy draws.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Record the case outcome. Panics with a reproduction seed on
    /// failure, or when the rejection budget (256× the case budget) is
    /// exhausted.
    pub fn finish_case(&mut self, outcome: CaseResult) {
        self.started = false;
        match outcome {
            Ok(()) => self.passed += 1,
            Err(CaseError::Reject(why)) => {
                self.rejected += 1;
                if self.rejected > self.cases.saturating_mul(256) {
                    panic!(
                        "property '{}' rejected too many cases ({}; last: {}); \
                         loosen prop_assume! or widen the strategies",
                        self.name, self.rejected, why
                    );
                }
            }
            Err(CaseError::Fail(why)) => {
                panic!(
                    "property '{}' failed at case {} (after {} rejects):\n{}\n\
                     reproduce with PROPTEST_LITE_SEED={:#x} (base seed of this stream)",
                    self.name, self.passed, self.rejected, why, self.base_seed
                );
            }
        }
    }
}

/// A value generator: each call to [`Strategy::generate`] draws one value
/// from the distribution the strategy describes.
pub trait Strategy {
    /// The generated value type.
    type Output;

    /// Draw one value.
    fn generate(&self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Output = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Output = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a full-domain default strategy, as produced by [`any`].
pub trait Arbitrary {
    /// Draw an unconstrained value (for numerics: uniform over all bit
    /// patterns, so floats include infinities and NaNs).
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_bool()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut Rng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut Rng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy drawing unconstrained values of `T`; see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The full-domain strategy for `T`: `any::<u8>()`, `any::<f32>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Output = T;

    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy always yielding a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Output = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Object-safe strategy facade, so [`OneOf`] can mix strategy types that
/// produce the same output.
pub trait DynStrategy<T> {
    /// Draw one value (object-safe form of [`Strategy::generate`]).
    fn generate_dyn(&self, rng: &mut Rng) -> T;
}

impl<S: Strategy> DynStrategy<S::Output> for S {
    fn generate_dyn(&self, rng: &mut Rng) -> S::Output {
        self.generate(rng)
    }
}

/// Box a strategy for [`OneOf`]; used by the [`prop_oneof!`] expansion.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<S::Output>> {
    Box::new(s)
}

/// Strategy picking uniformly among alternatives; see [`prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> OneOf<T> {
    /// A strategy choosing uniformly among `options`.
    ///
    /// # Panics
    /// If `options` is empty.
    pub fn new(options: Vec<Box<dyn DynStrategy<T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Output = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate_dyn(rng)
    }
}

/// String strategy: any pattern-like `&str` draws printable Unicode
/// strings (letters, digits, punctuation, a few multi-byte scripts and an
/// emoji — never control characters), of length 0–63. This deliberately
/// does not interpret the pattern as a regex; the suite only uses
/// `"\\PC*"` ("any printable string"), which this distribution satisfies.
impl Strategy for &str {
    type Output = String;

    fn generate(&self, rng: &mut Rng) -> String {
        const EXTRA: &[char] =
            &[' ', 'é', 'ß', 'λ', 'Ж', '中', '한', '🦀', 'ä', 'ø', '€', '№'];
        const ASCII: &[u8] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 !\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~";
        let len = rng.random_range(0usize..64);
        (0..len)
            .map(|_| {
                if rng.random_range(0u32..8) == 0 {
                    EXTRA[rng.random_range(0..EXTRA.len())]
                } else {
                    ASCII[rng.random_range(0..ASCII.len())] as char
                }
            })
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Output = ($($s::Output,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Output {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`collection::vec`), mirroring proptest's module
/// path so call sites keep reading `proptest::collection::vec(...)`.
pub mod collection {
    use super::{Rng, SampleRange, Strategy};

    /// Length distribution of a generated collection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range {r:?}");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range {r:?}");
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy generating a `Vec` of values drawn from an element
    /// strategy; see [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each draw picks a length in `size`, then draws
    /// that many elements.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Output = Vec<S::Output>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Output> {
            let len = (self.size.lo..self.size.hi).sample(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs: `use
/// babelflow_core::proptest_lite::prelude::*;`.
pub mod prelude {
    pub use super::{
        any, boxed, collection, Any, Arbitrary, CaseError, CaseResult, DynStrategy, Just, OneOf,
        ProptestConfig, Runner, Strategy,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop_name(x in 0u32..100, v in collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
///
/// Each test runs its body against `cases` generated inputs. Failures
/// panic with the base seed; see the module docs for replay.
#[macro_export]
macro_rules! proptest {
    // Munch one test fn, then recurse on the rest.
    (@with_config ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::proptest_lite::ProptestConfig = $cfg;
            let mut __runner = $crate::proptest_lite::Runner::new(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            while __runner.start_case() {
                $(let $arg = $crate::proptest_lite::Strategy::generate(&($strat), __runner.rng());)+
                let __outcome: $crate::proptest_lite::CaseResult = (|| {
                    $body
                    Ok(())
                })();
                __runner.finish_case(__outcome);
            }
        }
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)) => {};
    // Entry with a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    // Entry without a config header: default budget.
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::proptest_lite::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Assert inside a property body; failure reports the generated case
/// instead of panicking mid-test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::proptest_lite::CaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert two expressions are equal (with `Debug` output on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

/// Assert two expressions are unequal (with `Debug` output on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} ({})\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l
        );
    }};
}

/// Discard the current case (it does not count toward the budget) when a
/// generated input misses a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::proptest_lite::CaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::proptest_lite::CaseError::Reject(format!($($fmt)+)));
        }
    };
}

/// Strategy choosing uniformly among the listed strategies (all must
/// produce the same output type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::proptest_lite::OneOf::new(vec![
            $($crate::proptest_lite::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use crate::rng::Rng;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in -5i32..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn fixed_size_vec_is_exact(v in collection::vec(any::<u64>(), 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn assume_discards_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_only_yields_listed_values(
            b in prop_oneof![Just((2usize, 1usize)), Just((4, 3))],
        ) {
            prop_assert!(b == (2, 1) || b == (4, 3));
        }

        #[test]
        fn strings_are_printable(s in "\\PC*") {
            prop_assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_header_parses(x in 0u8..=255) {
            let _ = x;
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = collection::vec((0u32..100, any::<bool>()), 0..20);
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "reproduce with PROPTEST_LITE_SEED")]
    fn failure_reports_reproduction_seed() {
        let mut runner = Runner::new(ProptestConfig::with_cases(4), "always_fails");
        assert!(runner.start_case());
        runner.finish_case(Err(CaseError::Fail("boom".into())));
    }

    #[test]
    #[should_panic(expected = "rejected too many cases")]
    fn rejection_budget_is_finite() {
        let mut runner = Runner::new(ProptestConfig::with_cases(1), "always_rejects");
        loop {
            assert!(runner.start_case());
            runner.finish_case(Err(CaseError::Reject("nope".into())));
        }
    }
}
