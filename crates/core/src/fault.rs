//! Fault injection and recovery primitives shared by every backend.
//!
//! The paper's central robustness claim is that tasks are *idempotent*, so
//! a runtime may re-execute any task whose inputs are still available. This
//! module supplies the two halves every backend needs to exercise and
//! honor that claim:
//!
//! * a generalized [`FaultPlan`] — message drop/duplicate/delay (consumed
//!   by the MPI transport), one-shot callback panics (injected at the
//!   [`Registry`] level, so every backend is poisoned identically), and
//!   worker death (consumed by the asynchronous MPI controller's pool) —
//!   plus seeded random schedule generation for the conformance suite;
//! * the recovery helpers controllers build retry loops from:
//!   [`catch_invoke`] (one guarded callback attempt) and
//!   [`MAX_TASK_RETRIES`] (how many re-executions a poisoned task gets
//!   before it surfaces as
//!   [`TaskError`](crate::controller::ControllerError::TaskError)).
//!
//! Injected panics carry [`PANIC_MARKER`] in their message;
//! [`quiet_panic_hook`] suppresses exactly those from stderr so a test run
//! full of deliberately-poisoned tasks stays readable, while genuine
//! callback bugs still print.

use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};
use std::time::Duration;

use crate::ids::TaskId;
use crate::payload::Payload;
use crate::registry::{Callback, Registry};
use crate::rng::Rng;
use crate::sync::Mutex;

/// Re-executions a failing task gets before the controller gives up and
/// reports [`TaskError`](crate::controller::ControllerError::TaskError)
/// (so a task runs at most `1 + MAX_TASK_RETRIES` times).
pub const MAX_TASK_RETRIES: u32 = 3;

/// Marker substring carried by every injected panic; [`quiet_panic_hook`]
/// keys off it to keep deliberate faults out of stderr.
pub const PANIC_MARKER: &str = "babelflow-injected-fault";

/// A deterministic fault schedule.
///
/// Message faults are keyed `(src, dst, seq)` where `seq` counts raw sends
/// on that directed rank pair starting at 0 (acks and retransmits consume
/// sequence numbers too, so under recovery a fault may land on any leg of
/// the protocol — which is the point: the run must converge regardless).
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// Messages to silently drop.
    pub drop: Vec<(usize, usize, u64)>,
    /// Messages to deliver twice.
    pub duplicate: Vec<(usize, usize, u64)>,
    /// Messages to hold back for the given duration before delivery.
    /// Later sends on the same pair overtake the held message, so this is
    /// how reordering is exercised (MPI's per-pair FIFO guarantee is
    /// deliberately violated for the matched message only).
    pub delay: Vec<(usize, usize, u64, Duration)>,
    /// Tasks whose callback panics on its first invocation (process-wide,
    /// whichever backend executes it first; armed by [`inject_panics`]).
    pub panic_once: Vec<TaskId>,
    /// `(rank, worker)` pool threads that die when they pick up their
    /// first task, abandoning it. Only the asynchronous MPI controller
    /// models a worker pool, so only it consumes these; the killed worker
    /// must not be the rank's last one or the rank has nothing left to
    /// re-execute with.
    pub kill_worker: Vec<(usize, u32)>,
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.drop.is_empty()
            && self.duplicate.is_empty()
            && self.delay.is_empty()
            && self.panic_once.is_empty()
            && self.kill_worker.is_empty()
    }

    /// Just the transport faults (drop/duplicate/delay), for backends that
    /// take message faults but model their own execution failures.
    pub fn message_faults(&self) -> Self {
        FaultPlan {
            drop: self.drop.clone(),
            duplicate: self.duplicate.clone(),
            delay: self.delay.clone(),
            panic_once: Vec::new(),
            kill_worker: Vec::new(),
        }
    }

    /// A seeded random fault schedule for a world of `ranks` ranks running
    /// a graph whose tasks are `task_ids`: up to 3 drops, 3 duplicates and
    /// 2 short delays on random rank pairs, up to 2 one-shot callback
    /// panics, and (1-in-4 runs) the death of one rank's worker 0.
    /// Deterministic in `seed`.
    pub fn random(seed: u64, ranks: usize, task_ids: &[TaskId]) -> Self {
        let mut rng = Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut plan = FaultPlan::none();
        if ranks >= 2 {
            let pair = |rng: &mut Rng| {
                let src = rng.random_range(0..ranks);
                let mut dst = rng.random_range(0..ranks - 1);
                if dst >= src {
                    dst += 1;
                }
                (src, dst)
            };
            for _ in 0..rng.random_range(0..=3u32) {
                let (src, dst) = pair(&mut rng);
                plan.drop.push((src, dst, rng.random_range(0..6u64)));
            }
            for _ in 0..rng.random_range(0..=3u32) {
                let (src, dst) = pair(&mut rng);
                plan.duplicate.push((src, dst, rng.random_range(0..6u64)));
            }
            for _ in 0..rng.random_range(0..=2u32) {
                let (src, dst) = pair(&mut rng);
                let hold = Duration::from_millis(rng.random_range(1..=10u64));
                plan.delay.push((src, dst, rng.random_range(0..6u64), hold));
            }
            if rng.random_range(0..4u32) == 0 {
                plan.kill_worker.push((rng.random_range(0..ranks), 0));
            }
        }
        if !task_ids.is_empty() {
            for _ in 0..rng.random_range(0..=2u32) {
                plan.panic_once.push(task_ids[rng.random_range(0..task_ids.len())]);
            }
            plan.panic_once.sort();
            plan.panic_once.dedup();
        }
        plan
    }
}

/// Wrap every callback in `registry` so the tasks named in
/// `plan.panic_once` panic (with [`PANIC_MARKER`]) exactly once — the
/// first time each is invoked, process-wide — and behave normally on every
/// later attempt. Returns the poisoned registry; the original is untouched.
/// Installs [`quiet_panic_hook`] so the deliberate unwinds stay quiet.
pub fn inject_panics(registry: &Registry, plan: &FaultPlan) -> Registry {
    if plan.panic_once.is_empty() {
        return registry.clone();
    }
    quiet_panic_hook();
    let armed: Arc<Mutex<HashSet<TaskId>>> =
        Arc::new(Mutex::new(plan.panic_once.iter().copied().collect()));
    let mut out = Registry::new();
    for (id, cb) in registry.iter() {
        let cb = cb.clone();
        let armed = armed.clone();
        out.register(id, move |inputs, task| {
            if armed.lock().remove(&task) {
                panic!("{PANIC_MARKER}: injected one-shot panic in task {task}");
            }
            cb(inputs, task)
        });
    }
    out
}

/// Install (once, process-wide) a panic hook that suppresses the stderr
/// report for panics whose message contains [`PANIC_MARKER`], delegating
/// everything else to the previous hook. Idempotent.
pub fn quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let msg_has_marker = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(PANIC_MARKER))
                .or_else(|| {
                    info.payload().downcast_ref::<&str>().map(|s| s.contains(PANIC_MARKER))
                })
                .unwrap_or(false);
            if !msg_has_marker {
                prev(info);
            }
        }));
    });
}

/// One guarded callback attempt: invoke `cb` and convert an unwind into
/// `Err(message)` so a poisoned task becomes a retried task instead of a
/// crashed worker thread. Controllers clone the inputs per attempt (tasks
/// are idempotent, inputs are cheap shared handles) and loop up to
/// [`MAX_TASK_RETRIES`] times.
pub fn catch_invoke(
    cb: &Callback,
    inputs: Vec<Payload>,
    id: TaskId,
) -> std::result::Result<Vec<Payload>, String> {
    match panic::catch_unwind(AssertUnwindSafe(|| cb(inputs, id))) {
        Ok(outputs) => Ok(outputs),
        Err(e) => Err(e
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "callback panicked".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CallbackId;
    use crate::payload::Blob;

    #[test]
    fn random_plans_are_deterministic_in_the_seed() {
        let ids: Vec<TaskId> = (0..9).map(TaskId).collect();
        let a = FaultPlan::random(42, 4, &ids);
        let b = FaultPlan::random(42, 4, &ids);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = FaultPlan::random(43, 4, &ids);
        // Not a hard guarantee for any single pair of seeds, but these two
        // differ (checked once; the seed is fixed so this cannot flake).
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn random_plan_respects_bounds() {
        for seed in 0..64u64 {
            let ids: Vec<TaskId> = (0..5).map(TaskId).collect();
            let p = FaultPlan::random(seed, 3, &ids);
            assert!(p.drop.len() <= 3 && p.duplicate.len() <= 3 && p.delay.len() <= 2);
            assert!(p.panic_once.len() <= 2 && p.kill_worker.len() <= 1);
            for &(src, dst, _) in p.drop.iter().chain(&p.duplicate) {
                assert!(src < 3 && dst < 3 && src != dst);
            }
            for &(_, w) in &p.kill_worker {
                assert_eq!(w, 0, "only worker 0 is ever killed");
            }
        }
    }

    #[test]
    fn single_rank_plans_have_no_message_faults() {
        let p = FaultPlan::random(7, 1, &[TaskId(0)]);
        assert!(p.drop.is_empty() && p.duplicate.is_empty() && p.delay.is_empty());
        assert!(p.kill_worker.is_empty());
    }

    #[test]
    fn injected_panic_fires_exactly_once() {
        let mut r = Registry::new();
        r.register(CallbackId(0), |_, _| vec![Payload::wrap(Blob(vec![1]))]);
        let plan = FaultPlan { panic_once: vec![TaskId(5)], ..FaultPlan::none() };
        let poisoned = inject_panics(&r, &plan);
        let cb = poisoned.get(CallbackId(0)).unwrap();

        // First invocation of task 5 panics; the retry succeeds.
        assert!(catch_invoke(cb, vec![], TaskId(5)).is_err());
        assert!(catch_invoke(cb, vec![], TaskId(5)).is_ok());
        // Other tasks served by the same callback are unaffected.
        assert!(catch_invoke(cb, vec![], TaskId(6)).is_ok());
        // The original registry stays clean.
        assert!(catch_invoke(r.get(CallbackId(0)).unwrap(), vec![], TaskId(5)).is_ok());
    }

    #[test]
    fn catch_invoke_reports_the_panic_message() {
        quiet_panic_hook();
        let mut r = Registry::new();
        r.register(CallbackId(0), |_, _| panic!("{PANIC_MARKER}: boom"));
        let err = catch_invoke(r.get(CallbackId(0)).unwrap(), vec![], TaskId(0)).unwrap_err();
        assert!(err.contains("boom"), "got {err}");
    }

    #[test]
    fn message_faults_strips_execution_faults() {
        let plan = FaultPlan {
            drop: vec![(0, 1, 0)],
            panic_once: vec![TaskId(1)],
            kill_worker: vec![(0, 0)],
            ..FaultPlan::none()
        };
        let m = plan.message_faults();
        assert_eq!(m.drop, plan.drop);
        assert!(m.panic_once.is_empty() && m.kill_worker.is_empty());
        assert!(!plan.is_empty() && FaultPlan::none().is_empty());
    }
}
