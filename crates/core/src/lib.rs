//! # babelflow-core
//!
//! Core of BabelFlow-RS, a Rust reproduction of *"BabelFlow: An Embedded
//! Domain Specific Language for Parallel Analysis and Visualization"*
//! (Petruzza, Treichler, Pascucci, Bremer — IPDPS 2018).
//!
//! BabelFlow explicitly separates the implementation of the individual
//! tasks of an algorithm from the dataflow connecting them. An algorithm is
//! described once, as a [`TaskGraph`] of idempotent tasks exchanging
//! [`Payload`]s, and then executed unmodified by any of several runtime
//! [`Controller`]s (serial, MPI-like, Charm++-like, Legion-like, or the
//! discrete-event cluster simulator).
//!
//! The user performs the paper's three basic steps:
//!
//! 1. implement all tasks as callbacks and register them in a [`Registry`];
//! 2. provide ser/de routines by implementing [`PayloadData`] for every
//!    type exchanged between tasks;
//! 3. describe the dataflow by implementing [`TaskGraph`] (or use a
//!    prototypical graph from `babelflow-graphs`).
//!
//! ```
//! use babelflow_core::*;
//! use std::collections::HashMap;
//!
//! // A one-task graph: EXTERNAL -> double -> EXTERNAL.
//! struct Double;
//! impl TaskGraph for Double {
//!     fn size(&self) -> usize { 1 }
//!     fn task(&self, id: TaskId) -> Option<Task> {
//!         (id == TaskId(0)).then(|| {
//!             let mut t = Task::new(id, CallbackId(0));
//!             t.incoming = vec![TaskId::EXTERNAL];
//!             t.outgoing = vec![vec![TaskId::EXTERNAL]];
//!             t
//!         })
//!     }
//!     fn callback_ids(&self) -> Vec<CallbackId> { vec![CallbackId(0)] }
//! }
//!
//! let mut registry = Registry::new();
//! registry.register(CallbackId(0), |inputs, _id| {
//!     let blob = inputs[0].extract::<Blob>().unwrap();
//!     vec![Payload::wrap(Blob(blob.0.iter().map(|b| b * 2).collect()))]
//! });
//!
//! let mut initial = HashMap::new();
//! initial.insert(TaskId(0), vec![Payload::wrap(Blob(vec![21]))]);
//! let report = run_serial(&Double, &registry, initial).unwrap();
//! assert_eq!(report.outputs[&TaskId(0)][0].extract::<Blob>().unwrap().0, vec![42]);
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod channel;
pub mod codec;
pub mod compose;
pub mod controller;
pub mod dot;
pub mod exec;
pub mod fault;
pub mod graph;
pub mod ids;
pub mod lint;
pub mod payload;
pub mod plan;
pub mod proptest_lite;
pub mod registry;
pub mod rng;
pub mod serial;
pub mod stats;
pub mod sync;
pub mod task;
pub mod taskmap;
pub mod trace;

pub use buffer::{Bytes, BytesMut};
pub use codec::{DecodeError, Decoder, Encoder};
pub use compose::{ChainGraph, Link, OffsetGraph};
pub use controller::{
    preflight, Controller, ControllerError, InitialInputs, PerfStats, RecoveryStats, Result,
    RunReport, RunStats,
};
pub use exec::InputBuffer;
pub use fault::{
    catch_invoke, inject_panics, quiet_panic_hook, FaultPlan, MAX_TASK_RETRIES, PANIC_MARKER,
};
pub use dot::{to_dot, to_dot_styled, to_dot_subset};
pub use graph::{assert_valid, validate, ExplicitGraph, GraphDefect, TaskGraph};
pub use ids::{CallbackId, ShardId, TaskId};
pub use lint::{lint_bindings, lint_plan, Diagnostic, DiagnosticCode, Severity, VerifyReport};
pub use payload::{Blob, Payload, PayloadData, PayloadError};
pub use plan::{CountingGraph, PlanBuffer, PlanTask, Route, ShardPlan};
pub use registry::{Callback, DuplicateCallback, Registry};
pub use serial::{canonical_outputs, run_serial, SerialController};
pub use stats::{graph_stats, GraphStats};
pub use task::Task;
pub use taskmap::{check_consistency, BlockMap, FnMap, ModuloMap, TaskMap};
pub use trace::{noop_sink, NoopSink, SpanKind, TraceEvent, TraceSink};
