//! Logical tasks: the nodes of a task graph.

use crate::ids::{CallbackId, TaskId};

/// A logical task, as returned by
/// [`TaskGraph::task`](crate::graph::TaskGraph::task).
///
/// A task stores everything the paper requires of the abstraction: its
/// globally unique id, the ids of the tasks providing its inputs
/// (`incoming`, one entry per input slot), the destinations of each of its
/// outputs (`outgoing`, one fan-out set per output slot) and the
/// [`CallbackId`] identifying the user function to run.
///
/// [`TaskId::EXTERNAL`] in `incoming` marks an input supplied by the host
/// application; in `outgoing` it marks an output returned to the host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Task {
    /// Globally unique id of this task.
    pub id: TaskId,
    /// Which user callback executes this task.
    pub callback: CallbackId,
    /// Producer of each input slot, in slot order.
    pub incoming: Vec<TaskId>,
    /// Consumers of each output slot: `outgoing[s]` lists every task that
    /// receives output slot `s`.
    pub outgoing: Vec<Vec<TaskId>>,
}

impl Task {
    /// Create a task with no edges; builders then push edges.
    pub fn new(id: TaskId, callback: CallbackId) -> Self {
        Task { id, callback, incoming: Vec::new(), outgoing: Vec::new() }
    }

    /// Number of input slots.
    pub fn fan_in(&self) -> usize {
        self.incoming.len()
    }

    /// Number of output slots.
    pub fn fan_out(&self) -> usize {
        self.outgoing.len()
    }

    /// Whether any input comes from the host application.
    pub fn has_external_input(&self) -> bool {
        self.incoming.iter().any(|t| t.is_external())
    }

    /// Whether any output is returned to the host application.
    pub fn has_external_output(&self) -> bool {
        self.outgoing.iter().flatten().any(|t| t.is_external())
    }

    /// Input slot indices fed by the given producer.
    ///
    /// Controllers use this to route an arriving message (which carries its
    /// source task id) to the right input slot. Multiple slots may share a
    /// producer (e.g. binary swap partners exchange two halves); the
    /// controller fills them in order of arrival.
    pub fn input_slots_from(&self, src: TaskId) -> impl Iterator<Item = usize> + '_ {
        self.incoming
            .iter()
            .enumerate()
            .filter(move |(_, &p)| p == src)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_and_external_flags() {
        let mut t = Task::new(TaskId(3), CallbackId(0));
        assert_eq!(t.fan_in(), 0);
        assert_eq!(t.fan_out(), 0);
        assert!(!t.has_external_input());
        assert!(!t.has_external_output());

        t.incoming = vec![TaskId::EXTERNAL, TaskId(1)];
        t.outgoing = vec![vec![TaskId(4), TaskId(5)], vec![TaskId::EXTERNAL]];
        assert_eq!(t.fan_in(), 2);
        assert_eq!(t.fan_out(), 2);
        assert!(t.has_external_input());
        assert!(t.has_external_output());
    }

    #[test]
    fn input_slot_routing() {
        let mut t = Task::new(TaskId(0), CallbackId(0));
        t.incoming = vec![TaskId(7), TaskId(8), TaskId(7)];
        let slots: Vec<usize> = t.input_slots_from(TaskId(7)).collect();
        assert_eq!(slots, vec![0, 2]);
        assert_eq!(t.input_slots_from(TaskId(9)).count(), 0);
    }
}
