//! An in-repo unbounded channel with two-source `select`.
//!
//! Part of the zero-dependency substrate: replaces the `crossbeam`
//! channels the runtimes were built on. Both endpoints are cloneable, so
//! one channel can feed a pool of worker threads (multi-consumer) and
//! collect from many producers (multi-producer). Delivery is FIFO per
//! channel; a receive on an empty channel whose senders are all gone
//! reports disconnection instead of blocking forever.
//!
//! [`select2`] is the piece `std::sync::mpsc` cannot provide: block until
//! *either* of two channels has a message (or a timeout passes). The MPI
//! controller drives its event loop with it — worker completions on one
//! channel, network messages on the other, and a stall timeout as the
//! third arm. Selection works by registering a shared [`SelectWaker`] on
//! both channels; every send rings the waker, and the selector re-polls.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone; gives
/// the message back.
#[derive(Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Manual impl so `send(...).expect(...)` works for non-Debug messages.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Wakeup target a selector registers on the channels it polls. Senders
/// ring it after enqueueing; the selector sleeps on it between polls.
#[derive(Debug, Default)]
pub struct SelectWaker {
    signaled: Mutex<bool>,
    cv: Condvar,
}

impl SelectWaker {
    fn new() -> Self {
        Self::default()
    }

    /// Record a wakeup and rouse the selector.
    fn ring(&self) {
        *self.signaled.lock() = true;
        self.cv.notify_all();
    }

    /// Clear the signal before a poll round, so only sends that happen
    /// *after* the poll can ring it — that ordering is what makes the
    /// poll-then-sleep loop lose no wakeups.
    fn reset(&self) {
        *self.signaled.lock() = false;
    }

    /// Sleep until rung or `deadline`; returns `true` if rung.
    fn wait_until(&self, deadline: Instant) -> bool {
        let mut signaled = self.signaled.lock();
        while !*signaled {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.cv.wait_timeout(&mut signaled, deadline - now);
        }
        true
    }
}

/// Channel state behind the shared mutex.
struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    waker: Option<Arc<SelectWaker>>,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// The sending half of a channel; cloneable for multiple producers.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel; cloneable for a consumer pool.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1, waker: None }),
        cv: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Enqueue `value`; never blocks. Fails only when every receiver has
    /// been dropped, returning the value.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let waker = {
            let mut st = self.chan.state.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            st.waker.clone()
        };
        self.chan.cv.notify_one();
        if let Some(w) = waker {
            w.ring();
        }
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender { chan: self.chan.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut st = self.chan.state.lock();
            st.senders -= 1;
            (st.senders == 0).then(|| st.waker.clone()).flatten()
        };
        // The last sender leaving may turn blocked receives into
        // disconnections: wake everyone so they can observe it.
        self.chan.cv.notify_all();
        if let Some(w) = waker {
            w.ring();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives; `Err` when empty and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            self.chan.cv.wait(&mut st);
        }
    }

    /// Block until a message arrives or `timeout` passes.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            self.chan.cv.wait_timeout(&mut st, deadline - now);
        }
    }

    /// Dequeue a message if one is ready right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock();
        match st.queue.pop_front() {
            Some(v) => Ok(v),
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Messages currently queued (diagnostics only; immediately stale).
    pub fn len(&self) -> usize {
        self.chan.state.lock().queue.len()
    }

    /// Whether the queue is empty right now (diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn set_waker(&self, waker: Arc<SelectWaker>) {
        self.chan.state.lock().waker = Some(waker);
    }

    fn clear_waker(&self) {
        self.chan.state.lock().waker = None;
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().receivers += 1;
        Receiver { chan: self.chan.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.state.lock().receivers -= 1;
    }
}

/// Outcome of a [`select2`] round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Select2<A, B> {
    /// The first channel produced a message.
    A(A),
    /// The second channel produced a message.
    B(B),
    /// The first channel is empty and all its senders are gone.
    DisconnectedA,
    /// The second channel is empty and all its senders are gone.
    DisconnectedB,
    /// Neither channel produced a message within the timeout.
    Timeout,
}

/// Block until either channel has a message, one disconnects, or
/// `timeout` passes. When both have messages queued, the first channel
/// wins (it is polled first) — select is biased, and callers order the
/// arms by priority.
pub fn select2<A, B>(a: &Receiver<A>, b: &Receiver<B>, timeout: Duration) -> Select2<A, B> {
    let deadline = Instant::now() + timeout;
    let waker = Arc::new(SelectWaker::new());
    a.set_waker(waker.clone());
    b.set_waker(waker.clone());

    let outcome = loop {
        // Reset before polling: a send that lands after this line rings
        // the waker and aborts the sleep below; a send before it is
        // already visible to the polls. Either way nothing is lost.
        waker.reset();
        match a.try_recv() {
            Ok(v) => break Select2::A(v),
            Err(TryRecvError::Disconnected) => break Select2::DisconnectedA,
            Err(TryRecvError::Empty) => {}
        }
        match b.try_recv() {
            Ok(v) => break Select2::B(v),
            Err(TryRecvError::Disconnected) => break Select2::DisconnectedB,
            Err(TryRecvError::Empty) => {}
        }
        if !waker.wait_until(deadline) {
            break Select2::Timeout;
        }
    };

    a.clear_waker();
    b.clear_waker();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_channel() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_after_all_senders_drop_reports_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_after_all_receivers_drop_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx2.recv().unwrap(), 2);
    }

    #[test]
    fn worker_pool_drains_everything_exactly_once() {
        let n = 1000u64;
        let (tx, rx) = unbounded();
        let total: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for i in 1..=n {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, n * (n + 1) / 2);
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn select_prefers_first_ready_channel() {
        let (ta, ra) = unbounded();
        let (tb, rb) = unbounded();
        tb.send("b").unwrap();
        assert_eq!(select2(&ra, &rb, Duration::from_secs(1)), Select2::B("b"));
        ta.send("a").unwrap();
        tb.send("b").unwrap();
        // Both ready: biased toward the first arm.
        assert_eq!(select2(&ra, &rb, Duration::from_secs(1)), Select2::A("a"));
        assert_eq!(select2(&ra, &rb, Duration::from_secs(1)), Select2::B("b"));
    }

    #[test]
    fn select_times_out_and_reports_disconnects() {
        let (ta, ra) = unbounded::<u8>();
        let (tb, rb) = unbounded::<u8>();
        assert_eq!(select2(&ra, &rb, Duration::from_millis(10)), Select2::Timeout);
        drop(ta);
        assert_eq!(select2(&ra, &rb, Duration::from_millis(10)), Select2::DisconnectedA);
        drop(tb);
        let (_ta2, ra2) = unbounded::<u8>();
        assert_eq!(select2(&ra2, &rb, Duration::from_millis(10)), Select2::DisconnectedB);
    }

    #[test]
    fn select_wakes_on_cross_thread_send() {
        let (ta, ra) = unbounded::<u8>();
        let (_tb, rb) = unbounded::<u8>();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            ta.send(42).unwrap();
        });
        let start = Instant::now();
        assert_eq!(select2(&ra, &rb, Duration::from_secs(10)), Select2::A(42));
        assert!(start.elapsed() < Duration::from_secs(5), "select should wake promptly");
        sender.join().unwrap();
    }
}
