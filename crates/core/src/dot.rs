//! Graphviz/Dot export of task graphs.
//!
//! "We provide the ability to draw the abstract task graph (or subsets of
//! it) in Dot, a graph layout tool that makes debugging simple and
//! intuitive." Figures 5, 7 and 8 of the paper are drawings of exactly
//! these graphs; the `fig05`/`fig07`/`fig08` bench binaries emit them with
//! this module.

use std::fmt::Write as _;

use crate::graph::TaskGraph;
use crate::ids::{CallbackId, TaskId};
use crate::stats::graph_stats;

/// Styling hook: maps a callback id to a node label prefix and fill color.
pub type StyleFn<'a> = dyn Fn(CallbackId) -> (&'static str, &'static str) + 'a;

fn default_style(cb: CallbackId) -> (&'static str, &'static str) {
    const PALETTE: [&str; 6] =
        ["#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462"];
    ("", PALETTE[cb.0 as usize % PALETTE.len()])
}

/// Render the whole graph to Dot with default styling.
pub fn to_dot(graph: &dyn TaskGraph) -> String {
    to_dot_styled(graph, &default_style)
}

/// Render the whole graph to Dot, labeling/coloring nodes via `style`.
pub fn to_dot_styled(graph: &dyn TaskGraph, style: &StyleFn<'_>) -> String {
    to_dot_subset(graph, &graph.ids(), style)
}

/// Render a subset of tasks (e.g. one shard's local graph). Edges to tasks
/// outside the subset are drawn to ghost nodes; external inputs/outputs are
/// drawn as point nodes.
pub fn to_dot_subset(graph: &dyn TaskGraph, ids: &[TaskId], style: &StyleFn<'_>) -> String {
    let subset: std::collections::HashSet<TaskId> = ids.iter().copied().collect();
    let mut out = String::new();
    let mut ext = 0usize;

    out.push_str("digraph taskgraph {\n");
    // Static structure summary, so a drawing can be eyeballed against a
    // recorded trace without recomputing the stats.
    let gs = graph_stats(graph);
    let _ = writeln!(
        out,
        "  // graph_stats: tasks={} edges={} depth={} max_width={} max_fan_in={} max_fan_out={}",
        gs.tasks, gs.edges, gs.depth, gs.max_width, gs.max_fan_in, gs.max_fan_out
    );
    out.push_str("  rankdir=TB;\n  node [shape=circle, style=filled];\n");

    for &id in ids {
        let Some(task) = graph.task(id) else { continue };
        let (prefix, color) = style(task.callback);
        let label = if prefix.is_empty() {
            format!("{id}")
        } else {
            format!("{prefix}\\n{id}")
        };
        let _ = writeln!(out, "  t{id} [label=\"{label}\", fillcolor=\"{color}\"];", id = id.0);

        for (slot, dsts) in task.outgoing.iter().enumerate() {
            for &dst in dsts {
                if dst.is_external() {
                    let _ = writeln!(out, "  ext{ext} [shape=point];");
                    let _ = writeln!(out, "  t{} -> ext{ext} [label=\"{slot}\"];", id.0);
                    ext += 1;
                } else if subset.contains(&dst) {
                    let _ = writeln!(out, "  t{} -> t{} [label=\"{slot}\"];", id.0, dst.0);
                } else {
                    // Ghost: consumer on another shard.
                    let _ = writeln!(
                        out,
                        "  g{d} [label=\"{d}\", style=dashed, shape=circle];",
                        d = dst.0
                    );
                    let _ = writeln!(out, "  t{} -> g{} [style=dashed];", id.0, dst.0);
                }
            }
        }
        for &src in &task.incoming {
            if src.is_external() {
                let _ = writeln!(out, "  ext{ext} [shape=point];");
                let _ = writeln!(out, "  ext{ext} -> t{};", id.0);
                ext += 1;
            }
        }
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ExplicitGraph;
    use crate::task::Task;

    fn tiny() -> ExplicitGraph {
        let mut a = Task::new(TaskId(0), CallbackId(0));
        a.incoming = vec![TaskId::EXTERNAL];
        a.outgoing = vec![vec![TaskId(1)]];
        let mut b = Task::new(TaskId(1), CallbackId(1));
        b.incoming = vec![TaskId(0)];
        b.outgoing = vec![vec![TaskId::EXTERNAL]];
        ExplicitGraph::new(vec![a, b], vec![CallbackId(0), CallbackId(1)])
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let dot = to_dot(&tiny());
        assert!(dot.starts_with("digraph taskgraph {"));
        assert!(dot.contains("t0 ["));
        assert!(dot.contains("t1 ["));
        assert!(dot.contains("t0 -> t1"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn header_comment_carries_graph_stats() {
        let dot = to_dot(&tiny());
        assert!(dot.starts_with("digraph taskgraph {")); // comment stays inside the block
        assert!(dot.contains("// graph_stats: tasks=2 edges=1 depth=2 max_width=1"));
    }

    #[test]
    fn external_endpoints_drawn_as_points() {
        let dot = to_dot(&tiny());
        assert!(dot.contains("ext0 [shape=point]"));
        assert!(dot.contains("-> t0;")); // external feeds t0
    }

    #[test]
    fn subset_draws_ghosts_for_remote_consumers() {
        let g = tiny();
        let dot = to_dot_subset(&g, &[TaskId(0)], &|_| ("", "white"));
        assert!(dot.contains("g1 ["));
        assert!(dot.contains("t0 -> g1"));
        assert!(!dot.contains("t1 ["));
    }

    #[test]
    fn custom_style_labels() {
        let dot = to_dot_styled(&tiny(), &|cb| {
            if cb == CallbackId(0) {
                ("leaf", "red")
            } else {
                ("root", "blue")
            }
        });
        assert!(dot.contains("leaf\\n0"));
        assert!(dot.contains("root\\n1"));
        assert!(dot.contains("fillcolor=\"red\""));
    }
}
