//! Fault drill: the quickstart reduction run under injected faults on
//! every backend.
//!
//! Each backend executes the same 16-leaf reduction while the harness
//! drops and duplicates transport messages (MPI backends), kills a
//! worker thread (async MPI), and panics the root callback on its first
//! attempt (all backends). The run must still byte-match the fault-free
//! serial golden — the exactly-once guarantee of DESIGN.md §11 — and the
//! recovery counters must show the faults were actually absorbed, not
//! merely absent.
//!
//! Run with: `cargo run --example fault_drill`
//! CI runs this as the fault-matrix smoke test (see ci.sh).

use std::collections::HashMap;
use std::process::exit;
use std::time::Duration;

use babelflow::core::{
    canonical_outputs, inject_panics, run_serial, Blob, Controller, FaultPlan, FnMap, Payload,
    Registry, ShardId, TaskGraph, TaskId,
};
use babelflow::graphs::{reduction, Reduction};

fn val(p: &Payload) -> u64 {
    u64::from_le_bytes(p.extract::<Blob>().unwrap().0.as_slice().try_into().unwrap())
}

fn pay(v: u64) -> Payload {
    Payload::wrap(Blob(v.to_le_bytes().to_vec()))
}

fn main() {
    let graph = Reduction::new(16, 4);
    let cb = graph.callback_ids();
    let mut registry = Registry::new();
    registry.register(cb[reduction::LEAF_CB], |inputs, _| inputs);
    registry.register(cb[reduction::REDUCE_CB], |inputs, _| {
        vec![pay(inputs.iter().map(val).sum())]
    });
    registry.register(cb[reduction::ROOT_CB], |inputs, _| {
        vec![pay(inputs.iter().map(val).sum())]
    });

    let initial = || -> HashMap<TaskId, Vec<Payload>> {
        graph
            .leaf_ids()
            .into_iter()
            .enumerate()
            .map(|(i, id)| (id, vec![pay(i as u64 + 1)]))
            .collect()
    };

    // The golden: a fault-free serial run. Sum of 1..=16.
    let golden = run_serial(&graph, &registry, initial()).expect("fault-free serial golden");
    assert_eq!(val(&golden.outputs[&graph.root_id()][0]), 136);
    let canon = canonical_outputs(&golden);

    // The drill: early-sequence drops and duplicates in both directions,
    // one delayed delivery, one killed worker, and a root callback that
    // panics on its first attempt.
    let faults = FaultPlan {
        drop: vec![(0, 1, 0), (1, 0, 1)],
        duplicate: vec![(0, 1, 1), (1, 0, 0)],
        delay: vec![(0, 1, 2, Duration::from_millis(5))],
        panic_once: vec![graph.root_id()],
        kill_worker: vec![(0, 1)],
    };

    let ids = graph.ids();
    let map = FnMap::new(2, ids, |t| ShardId((t.0 % 2) as u32));
    let timeout = Duration::from_secs(10);
    let mut backends: Vec<(&str, Box<dyn Controller>)> = vec![
        ("serial", Box::new(babelflow::core::SerialController::new())),
        (
            "mpi-async",
            Box::new(
                babelflow::mpi::MpiController::new()
                    .with_workers(2)
                    .with_timeout(timeout)
                    .with_faults(faults.clone()),
            ),
        ),
        (
            "mpi-blocking",
            Box::new(
                babelflow::mpi::BlockingMpiController::new()
                    .with_timeout(timeout)
                    .with_faults(faults.message_faults()),
            ),
        ),
        ("charm", Box::new(babelflow::charm::CharmController::new(2).with_timeout(timeout))),
        (
            "legion-spmd",
            Box::new(babelflow::legion::LegionSpmdController::new(2).with_timeout(timeout)),
        ),
        (
            "legion-il",
            Box::new(babelflow::legion::LegionIndexLaunchController::new(2).with_timeout(timeout)),
        ),
    ];

    let mut failed = false;
    for (name, ctrl) in &mut backends {
        // Re-arm the one-shot panics for each backend: each must absorb
        // the callback fault itself.
        let poisoned = inject_panics(&registry, &faults);
        match ctrl.run(&graph, &map, &poisoned, initial()) {
            Ok(report) => {
                let matches = canonical_outputs(&report) == canon;
                let recovered = report.stats.recovery.retries > 0;
                println!(
                    "{name:<13}: outputs {} | {}",
                    if matches { "byte-match golden" } else { "DIVERGE" },
                    report.stats.recovery
                );
                if !matches || !recovered {
                    eprintln!("{name}: expected byte-matching outputs and retries > 0");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{name}: failed under faults: {e}");
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
    println!("all backends survived the drill with exactly-once effect");
}
