//! Distributed rendering + compositing (the paper's §V-B use case).
//!
//! Renders a synthetic combustion volume by Z slabs, composites with both
//! the reduction dataflow (Listing 1) and binary swap (Fig. 7), verifies
//! the two agree with each other and with the IceT-like baseline, and
//! writes the final image as a PPM.
//!
//! Run with: `cargo run --release --example parallel_rendering`

use babelflow::core::{run_serial, Controller, ModuloMap, TaskGraph};
use babelflow::data::{hcci_proxy, HcciParams, Idx3};
use babelflow::mpi::MpiController;
use babelflow::render::{
    icet_reduce, max_pixel_diff, render_block, RenderConfig, RenderParams, TransferFunction,
};

fn main() {
    let n = 64;
    println!("generating {n}^3 volume…");
    let grid = hcci_proxy(&HcciParams {
        size: n,
        kernels: 32,
        kernel_radius: 0.09,
        noise_amplitude: 0.1,
        noise_scale: 8,
        seed: 77,
    });

    let cfg = RenderConfig {
        dims: Idx3::new(n, n, n),
        slabs: 8,
        params: RenderParams {
            image: (256, 256),
            world: (n, n),
            step: 0.5,
            tf: TransferFunction { lo: 0.3, hi: 1.2, density: 0.1 },
        },
        valence: 2,
    };

    // Reduction compositing on the MPI-like runtime.
    let g = cfg.reduction_graph();
    let map = ModuloMap::new(4, g.size() as u64);
    let report = MpiController::new()
        .run(
            &g,
            &map,
            &cfg.reduction_registry(),
            cfg.initial_inputs(&grid, &g.leaf_ids()),
        )
        .expect("reduction pipeline");
    let reduced = cfg.final_image(&report);
    println!("reduction compositing: {} tasks", report.stats.tasks_executed);

    // Binary-swap compositing, serial controller (debugging mode).
    let bs = cfg.binary_swap_graph();
    let report = run_serial(
        &bs,
        &cfg.binary_swap_registry(),
        cfg.initial_inputs(&grid, &bs.leaf_ids()),
    )
    .expect("binary swap pipeline");
    let swapped = cfg.final_image(&report);
    println!("binary-swap compositing: {} tiles", report.outputs.len());

    // IceT-like baseline: direct in-memory compositing.
    let decomp = cfg.decomp();
    let frags: Vec<_> = (0..decomp.count())
        .map(|i| {
            let b = decomp.block(&grid, i);
            render_block(&cfg.params, (b.origin.x, b.origin.y, b.origin.z), &b.grid)
        })
        .collect();
    let icet = icet_reduce(frags, 2);

    println!("reduction vs binary swap max pixel diff: {:.2e}", max_pixel_diff(&reduced, &swapped));
    println!("reduction vs IceT baseline max pixel diff: {:.2e}", max_pixel_diff(&reduced, &icet));
    assert!(max_pixel_diff(&reduced, &swapped) < 1e-4);
    assert!(max_pixel_diff(&reduced, &icet) < 1e-5);

    let path = std::path::Path::new("results").join("rendered_volume.ppm");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(&path, reduced.to_ppm([0.02, 0.02, 0.05])).expect("write image");
    println!("wrote {}", path.display());
}
