//! In-situ analysis coupling (the paper's motivating deployment).
//!
//! Simulates the real integration pattern: a "simulation" runs one thread
//! per MPI rank, each producing its own data blocks every timestep; after
//! each step, every rank feeds its *local* blocks into its assigned
//! subgraph of the analysis dataflow — no global gather, exactly as §III
//! describes for the MPI execution model.
//!
//! Run with: `cargo run --release --example insitu_analysis`

use std::sync::Arc;

use babelflow::core::{InitialInputs, ModuloMap, Payload, Registry, TaskGraph};
use babelflow::data::{hcci_proxy, HcciParams, Idx3};
use babelflow::graphs::MergeTreeMap;
use babelflow::mpi::InSituWorld;
use babelflow::topology::{feature_count, MergeTreeConfig, Segmentation};

fn main() {
    let ranks = 4;
    let n = 16;
    let cfg = MergeTreeConfig {
        dims: Idx3::new(n, n, n),
        blocks: Idx3::new(2, 2, 2),
        threshold: 0.4,
        valence: 2,
    };
    let graph = Arc::new(cfg.graph());
    let map = Arc::new(MergeTreeMap::new(cfg.graph(), ranks));
    let _modulo = ModuloMap::new(ranks, graph.size() as u64); // alternative map

    for step in 0..3 {
        // Each timestep evolves the field (different seed = new state).
        let field = hcci_proxy(&HcciParams {
            size: n,
            kernels: 10 + 2 * step as usize,
            kernel_radius: 0.1,
            noise_amplitude: 0.2,
            noise_scale: 4,
            seed: 100 + step,
        });
        // What each rank's part of the simulation "owns" this step.
        let all_inputs = cfg.initial_inputs(&field);

        let world = InSituWorld::new(
            graph.clone(),
            map.clone(),
            cfg.registry() as Registry,
        );
        let rank_handles = world.into_ranks();

        let per_rank: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = rank_handles
                .into_iter()
                .map(|rank| {
                    // The simulation rank thread: hand over only the blocks
                    // this rank owns.
                    let mine: InitialInputs = rank
                        .local_input_tasks()
                        .into_iter()
                        .map(|t| (t, all_inputs[&t].clone()))
                        .collect();
                    s.spawn(move || {
                        let blocks = mine.len();
                        let (outputs, stats) = rank.run(mine).expect("in-situ analysis");
                        (blocks, outputs, stats)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Gather this step's segmentations for reporting (the host app
        // would normally keep them distributed).
        let segs: Vec<Segmentation> = per_rank
            .iter()
            .flat_map(|(_, outputs, _)| outputs.values().flatten())
            .map(|p: &Payload| (*p.extract::<Segmentation>().expect("seg output")).clone())
            .collect();
        let features = feature_count(&segs);
        let tasks: u64 = per_rank.iter().map(|(_, _, s)| s.tasks_executed).sum();
        println!(
            "step {step}: {} ranks fed {} local blocks each, {} tasks executed, {} features",
            ranks,
            per_rank[0].0,
            tasks,
            features
        );
    }
    println!("in-situ coupling: no rank ever saw another rank's data ✓");
}
