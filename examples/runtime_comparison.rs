//! Runtime portability demo: one task graph, every backend.
//!
//! The paper's central claim is that an algorithm written once against the
//! EDSL runs natively on MPI, Charm++, and Legion. This example executes
//! the same merge-tree dataflow on all six controllers of this
//! reproduction, verifies byte-identical outputs, and prints each
//! backend's execution statistics — "the framework guarantees the same
//! tasks are executed, independent of the runtime".
//!
//! Run with: `cargo run --release --example runtime_comparison`

use std::time::Instant;

use babelflow::core::{
    canonical_outputs, Controller, InitialInputs, RunReport, SerialController,
    TaskGraph, TaskMap,
};
use babelflow::data::{hcci_proxy, HcciParams, Idx3};
use babelflow::graphs::MergeTreeMap;
use babelflow::topology::MergeTreeConfig;

fn main() {
    let n = 24;
    let grid = hcci_proxy(&HcciParams {
        size: n,
        kernels: 16,
        kernel_radius: 0.1,
        noise_amplitude: 0.15,
        noise_scale: 4,
        seed: 7,
    });
    let cfg = MergeTreeConfig {
        dims: Idx3::new(n, n, n),
        blocks: Idx3::new(2, 2, 2),
        threshold: 0.4,
        valence: 2,
    };
    let graph = cfg.graph();
    let registry = cfg.registry();
    let map = MergeTreeMap::new(graph.clone(), 4);

    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(SerialController::new()),
        Box::new(babelflow::mpi::MpiController::new()),
        Box::new(babelflow::mpi::BlockingMpiController::new()),
        Box::new(babelflow::charm::CharmController::new(4)),
        Box::new(babelflow::legion::LegionSpmdController::new(4)),
        Box::new(babelflow::legion::LegionIndexLaunchController::new(4)),
    ];

    println!(
        "merge-tree dataflow: {} tasks over {} shards\n",
        graph.size(),
        map.num_shards()
    );
    println!(
        "{:<18} {:>9} {:>7} {:>8} {:>9} {:>8}",
        "backend", "wall(ms)", "tasks", "remote", "bytes", "local"
    );

    let mut reference: Option<_> = None;
    for c in controllers.iter_mut() {
        let initial: InitialInputs = cfg.initial_inputs(&grid);
        let t0 = Instant::now();
        let report: RunReport =
            c.run(&graph, &map, &registry, initial).unwrap_or_else(|e| {
                panic!("{} failed: {e}", c.name());
            });
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<18} {:>9.1} {:>7} {:>8} {:>9} {:>8}",
            c.name(),
            wall,
            report.stats.tasks_executed,
            report.stats.remote_messages,
            report.stats.remote_bytes,
            report.stats.local_messages
        );

        let canon = canonical_outputs(&report);
        match &reference {
            None => reference = Some(canon),
            Some(r) => assert_eq!(&canon, r, "{} diverged from serial", c.name()),
        }
    }
    println!("\nall six backends produced byte-identical outputs ✓");
}
