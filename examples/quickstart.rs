//! Quickstart: the paper's three-step workflow on a global-statistics
//! reduction.
//!
//! "Changing the callbacks […] one can also compute global statistics or
//! execute any number of reduction-based algorithms." This example builds
//! Listing 1's reduction dataflow, registers three callbacks (leaf:
//! summarize a data block; reduce: merge summaries; root: finalize), and
//! runs it on the serial controller and the MPI-like backend — same code,
//! two runtimes.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Pass `--trace out.json` to record the MPI run and write a Chrome
//! `trace_event` file (open it in `chrome://tracing` or Perfetto).

use std::collections::HashMap;

use babelflow::core::{
    codec::DecodeError, canonical_outputs, run_serial, Controller, Decoder, Encoder, ModuloMap,
    Payload, PayloadData, Registry, TaskGraph,
};
use babelflow::graphs::{reduction, Reduction};
use babelflow::mpi::MpiController;
use babelflow::trace::{check_coverage, parse_json, to_chrome_json, TraceRecorder, TraceSummary};
use babelflow_core::Bytes;

/// Min/max/sum statistics — the object exchanged between tasks. Step 2 of
/// the paper's workflow: provide its serialization.
#[derive(Debug, Clone, PartialEq)]
struct Stats {
    min: f32,
    max: f32,
    sum: f64,
    count: u64,
}

impl Stats {
    fn of(data: &[f32]) -> Stats {
        Stats {
            min: data.iter().copied().fold(f32::INFINITY, f32::min),
            max: data.iter().copied().fold(f32::NEG_INFINITY, f32::max),
            sum: data.iter().map(|&v| v as f64).sum(),
            count: data.len() as u64,
        }
    }

    fn merge(items: impl Iterator<Item = Stats>) -> Stats {
        items.fold(
            Stats { min: f32::INFINITY, max: f32::NEG_INFINITY, sum: 0.0, count: 0 },
            |a, b| Stats {
                min: a.min.min(b.min),
                max: a.max.max(b.max),
                sum: a.sum + b.sum,
                count: a.count + b.count,
            },
        )
    }
}

impl PayloadData for Stats {
    fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        e.put_f32(self.min);
        e.put_f32(self.max);
        e.put_f64(self.sum);
        e.put_u64(self.count);
        e.finish()
    }

    fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(buf);
        Ok(Stats { min: d.get_f32()?, max: d.get_f32()?, sum: d.get_f64()?, count: d.get_u64()? })
    }
}

/// A raw data block (what the "simulation" hands us).
struct BlockData(Vec<f32>);

impl PayloadData for BlockData {
    fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        e.put_f32_slice(&self.0);
        e.finish()
    }

    fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        Ok(BlockData(Decoder::new(buf).get_f32_vec()?))
    }
}

/// `--trace <path>` from the command line, if present.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("--trace needs an output path");
                std::process::exit(2);
            });
            return Some(path);
        }
    }
    None
}

fn main() {
    // Step 3: describe the dataflow — a reduction tree over 16 blocks,
    // valence 4 (Listing 1's `Reduction graph(block_decomp, valence)`).
    let graph = Reduction::new(16, 4);

    // Step 1: implement the tasks and register the callbacks.
    let cb = graph.callback_ids();
    let mut registry = Registry::new();
    registry.register(cb[reduction::LEAF_CB], |inputs, _id| {
        let block = inputs[0].extract::<BlockData>().expect("leaf gets a block");
        vec![Payload::wrap(Stats::of(&block.0))]
    });
    registry.register(cb[reduction::REDUCE_CB], |inputs, _id| {
        let merged = Stats::merge(
            inputs.iter().map(|p| (*p.extract::<Stats>().expect("stats")).clone()),
        );
        vec![Payload::wrap(merged)]
    });
    registry.register(cb[reduction::ROOT_CB], |inputs, _id| {
        let merged = Stats::merge(
            inputs.iter().map(|p| (*p.extract::<Stats>().expect("stats")).clone()),
        );
        vec![Payload::wrap(merged)]
    });

    // Hand off the input data by assigning payloads to the leaf tasks.
    let initial = || -> HashMap<_, _> {
        graph
            .leaf_ids()
            .into_iter()
            .enumerate()
            .map(|(i, id)| {
                let data: Vec<f32> =
                    (0..1000).map(|j| ((i * 1000 + j) as f32).sin()).collect();
                (id, vec![Payload::wrap(BlockData(data))])
            })
            .collect()
    };

    // Run serially (debugging mode)…
    let serial = run_serial(&graph, &registry, initial()).expect("serial run");
    let stats = serial.outputs[&graph.root_id()][0].extract::<Stats>().expect("stats");
    println!(
        "serial   : min={:.4} max={:.4} mean={:.6} over {} samples",
        stats.min,
        stats.max,
        stats.sum / stats.count as f64,
        stats.count
    );

    // …then on the MPI-like runtime over 4 ranks, unchanged. With
    // `--trace`, the same run also records every task/message span.
    let map = ModuloMap::new(4, graph.size() as u64);
    let mut mpi = MpiController::new();
    let recorder = trace_path().map(|path| (path, TraceRecorder::shared()));
    let report = match &recorder {
        Some((_, rec)) => mpi
            .run_traced(&graph, &map, &registry, initial(), rec.clone())
            .expect("mpi run"),
        None => mpi.run(&graph, &map, &registry, initial()).expect("mpi run"),
    };
    let stats = report.outputs[&graph.root_id()][0].extract::<Stats>().expect("stats");
    println!(
        "mpi (4r) : min={:.4} max={:.4} mean={:.6} over {} samples",
        stats.min,
        stats.max,
        stats.sum / stats.count as f64,
        stats.count
    );
    println!(
        "identical outputs: {}",
        canonical_outputs(&serial) == canonical_outputs(&report)
    );
    println!(
        "mpi stats: {} tasks, {} remote messages ({} bytes), {} local",
        report.stats.tasks_executed,
        report.stats.remote_messages,
        report.stats.remote_bytes,
        report.stats.local_messages
    );

    // Export, self-validate, and analyze the recorded trace.
    if let Some((path, rec)) = recorder {
        let trace = rec.take();
        check_coverage(&trace, &graph).expect("every task traced exactly once");
        let json = to_chrome_json(&trace);
        parse_json(&json).expect("export is valid trace_event JSON");
        std::fs::write(&path, &json).expect("write trace file");
        println!(
            "trace    : {} events -> {path} (load in chrome://tracing)",
            trace.len()
        );
        print!("{}", TraceSummary::from_trace(&trace));
    }
}
