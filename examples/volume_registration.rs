//! Tiled volume registration (the paper's §V-C use case).
//!
//! Generates a synthetic "microscopy acquisition" — a grid of overlapping
//! volume tiles whose true positions are jittered — runs the neighbor
//! dataflow of Fig. 8 to recover the offsets, and checks them against the
//! generator's ground truth (something the paper's real scans could not
//! provide).
//!
//! Run with: `cargo run --release --example volume_registration`

use babelflow::core::{Controller, ModuloMap, TaskGraph};
use babelflow::data::{brain_acquisition, BrainParams};
use babelflow::mpi::MpiController;
use babelflow::register::RegisterConfig;

fn main() {
    let params = BrainParams {
        grid: (3, 3),
        tile: 32,
        overlap: 0.2,
        max_jitter: 2,
        noise: 0.02,
        seed: 2026,
    };
    println!(
        "acquiring {}x{} tiles of {}^3 voxels, {:.0}% overlap, jitter ±{}…",
        params.grid.0,
        params.grid.1,
        params.tile,
        params.overlap * 100.0,
        params.max_jitter
    );
    let acq = brain_acquisition(&params);

    // Adjacent tiles can disagree by up to twice the per-tile jitter, so
    // the search window must cover ±2·max_jitter.
    let search = 2 * params.max_jitter as i64 + 1;
    let cfg = RegisterConfig::for_acquisition(&acq, 4, search);
    let graph = cfg.graph();
    println!(
        "dataflow: {} tasks ({} volumes, {} edges, {} slabs)",
        graph.size(),
        graph.volumes(),
        graph.edges(),
        graph.slabs()
    );

    let map = ModuloMap::new(4, graph.size() as u64);
    let report = MpiController::new()
        .run(&graph, &map, &cfg.registry(), cfg.initial_inputs(&acq))
        .expect("registration dataflow");
    let positions = cfg.positions(&report);

    let truth = |v: usize| {
        let j = |i: usize| {
            let t = &acq.tiles[i];
            (
                t.true_origin.0 - t.nominal_origin.0,
                t.true_origin.1 - t.nominal_origin.1,
                t.true_origin.2 - t.nominal_origin.2,
            )
        };
        let (j0, jv) = (j(0), j(v));
        (jv.0 - j0.0, jv.1 - j0.1, jv.2 - j0.2)
    };

    let mut correct = 0;
    println!("volume  recovered deviation   ground truth");
    for &(v, dev) in &positions.list {
        let t = truth(v as usize);
        let ok = dev == t;
        correct += ok as usize;
        println!(
            "  {:>3}   ({:>3}, {:>3}, {:>3})      ({:>3}, {:>3}, {:>3})  {}",
            v,
            dev.0,
            dev.1,
            dev.2,
            t.0,
            t.1,
            t.2,
            if ok { "✓" } else { "✗" }
        );
    }
    println!("{correct}/{} volumes exactly recovered", positions.list.len());
    assert_eq!(correct, positions.list.len(), "registration must recover the ground truth");
}
