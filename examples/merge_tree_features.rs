//! Topological feature extraction (the paper's §V-A use case).
//!
//! Builds a synthetic HCCI-like combustion field, runs the segmented
//! merge-tree dataflow of Fig. 5 on a selectable runtime, and reports the
//! extracted superlevel-set features (the ignition regions of Fig. 4).
//!
//! Run with: `cargo run --release --example merge_tree_features -- [runtime]`
//! where `runtime` is one of `serial` (default), `mpi`, `blocking`,
//! `charm`, `legion-spmd`, `legion-il`.

use babelflow::core::{run_serial, Controller, RunReport};
use babelflow::data::{hcci_proxy, HcciParams, Idx3};
use babelflow::graphs::MergeTreeMap;
use babelflow::topology::{merge_segmentations, MergeTreeConfig};

fn main() {
    let runtime = std::env::args().nth(1).unwrap_or_else(|| "serial".into());

    let n = 32;
    println!("generating {n}^3 HCCI proxy field…");
    let grid = hcci_proxy(&HcciParams {
        size: n,
        kernels: 24,
        kernel_radius: 0.08,
        noise_amplitude: 0.15,
        noise_scale: 4,
        seed: 42,
    });

    let cfg = MergeTreeConfig {
        dims: Idx3::new(n, n, n),
        blocks: Idx3::new(2, 2, 2),
        threshold: 0.5,
        valence: 8, // "In practice, we typically use 8-way reductions."
    };
    let graph = cfg.graph();
    let registry = cfg.registry();
    let map = MergeTreeMap::new(graph.clone(), 4);
    println!(
        "dataflow: {} tasks ({} blocks, valence {})",
        babelflow::core::TaskGraph::size(&graph),
        cfg.blocks.volume(),
        cfg.valence
    );

    let report: RunReport = match runtime.as_str() {
        "serial" => run_serial(&graph, &registry, cfg.initial_inputs(&grid)),
        "mpi" => babelflow::mpi::MpiController::new()
            .run(&graph, &map, &registry, cfg.initial_inputs(&grid)),
        "blocking" => babelflow::mpi::BlockingMpiController::new()
            .run(&graph, &map, &registry, cfg.initial_inputs(&grid)),
        "charm" => babelflow::charm::CharmController::new(4)
            .run(&graph, &map, &registry, cfg.initial_inputs(&grid)),
        "legion-spmd" => babelflow::legion::LegionSpmdController::new(4)
            .run(&graph, &map, &registry, cfg.initial_inputs(&grid)),
        "legion-il" => babelflow::legion::LegionIndexLaunchController::new(4)
            .run(&graph, &map, &registry, cfg.initial_inputs(&grid)),
        other => {
            eprintln!("unknown runtime '{other}'");
            std::process::exit(2);
        }
    }
    .expect("dataflow run");

    let segs = cfg.collect_segmentations(&report);
    let features = merge_segmentations(&segs);
    let mut sizes: Vec<usize> = features.values().map(Vec::len).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));

    println!("runtime '{runtime}': {} features above f >= {}", features.len(), cfg.threshold);
    for (rank, size) in sizes.iter().take(10).enumerate() {
        println!("  feature {:>2}: {:>6} voxels", rank + 1, size);
    }
    // Cross-check against the serial oracle.
    let oracle = cfg.oracle_partition(&grid);
    assert_eq!(
        babelflow::topology::canonical_partition(&features),
        babelflow::topology::canonical_partition(&oracle),
        "distributed segmentation must match the global merge tree"
    );
    println!("verified against the global-oracle segmentation ✓");
}
