//! BabelFlow-RS umbrella crate: re-exports every sub-crate.
//!
//! See `babelflow_core` for the EDSL, `babelflow_graphs` for prototypical
//! dataflows, the `mpi`/`charm`/`legion` crates for runtime backends,
//! `babelflow_sim` for the at-scale discrete-event simulator, and the
//! `topology`/`render`/`register` crates for the paper's three use cases.

pub use babelflow_charm as charm;
pub use babelflow_core as core;
pub use babelflow_data as data;
pub use babelflow_graphs as graphs;
pub use babelflow_legion as legion;
pub use babelflow_mpi as mpi;
pub use babelflow_register as register;
pub use babelflow_render as render;
pub use babelflow_sim as sim;
pub use babelflow_topology as topology;
// Explicit (not via the glob below, which would bind `trace` to
// babelflow_core's schema module): the full recording/analysis crate.
pub use babelflow_trace as trace;
pub use babelflow_verify as verify;

pub use babelflow_core::*;
