//! ShardPlan ≡ procedural graph: the fast-path execution plan must be a
//! faithful, lossless interning of `Graph::task()` + `TaskMap` over every
//! graph family the library ships. Controllers execute from the plan and
//! never re-query the graph in steady state, so any divergence here is a
//! silent wrong-answer bug on all six backends.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use babelflow::core::{
    canonical_outputs, run_serial, Blob, CallbackId, Controller, FnMap, ModuloMap, Payload,
    Registry, SerialController, ShardId, ShardPlan, TaskGraph, TaskId, TaskMap,
};
use babelflow::graphs::{BinarySwap, Broadcast, KWayMerge, NeighborGraph, Reduction};

fn pay(v: u64) -> Payload {
    Payload::wrap(Blob(v.to_le_bytes().to_vec()))
}

fn val(p: &Payload) -> u64 {
    u64::from_le_bytes(p.extract::<Blob>().unwrap().0.as_slice().try_into().unwrap())
}

/// The five library families plus a degenerate single-task reduction.
fn families() -> Vec<(&'static str, Arc<dyn TaskGraph>)> {
    vec![
        ("reduction", Arc::new(Reduction::new(27, 3))),
        ("broadcast", Arc::new(Broadcast::new(16, 2))),
        ("binary-swap", Arc::new(BinarySwap::new(8))),
        ("kway-merge", Arc::new(KWayMerge::new(9, 3))),
        ("neighbor", Arc::new(NeighborGraph::new(3, 2, 2))),
        ("reduction-min", Arc::new(Reduction::new(2, 2))),
    ]
}

/// Field-by-field comparison of a built plan against fresh procedural
/// queries: tasks, placement, slot sources, routes, shard-local lists, and
/// the input/output/callback summaries.
fn assert_plan_matches(name: &str, graph: &dyn TaskGraph, map: &dyn TaskMap) {
    let plan = ShardPlan::build(graph, map);

    let ids = graph.ids();
    assert_eq!(plan.len(), ids.len(), "{name}: task count");
    assert_eq!(plan.num_shards(), map.num_shards(), "{name}: shard count");

    for &id in &ids {
        let task = graph.task(id).expect("ids() yields tasks");
        let pt = plan.task_by_id(id).unwrap_or_else(|| panic!("{name}: {id} missing from plan"));

        // The interned task is the procedural task, verbatim.
        assert_eq!(pt.task, task, "{name}: {id} interned task");
        assert_eq!(pt.shard, map.shard(id), "{name}: {id} placement");

        // External input count matches the EXTERNAL markers in slot order.
        let externals = task.incoming.iter().filter(|s| s.is_external()).count();
        assert_eq!(pt.external_inputs, externals, "{name}: {id} external inputs");

        // Slot sources: reassembling (producer -> slots) must reproduce the
        // incoming vector exactly, slot indices in slot order per producer.
        let mut rebuilt: Vec<Option<TaskId>> = vec![None; task.incoming.len()];
        for (src, slots) in &pt.sources {
            let mut last = None;
            for &slot in slots {
                assert!(rebuilt[slot as usize].replace(*src).is_none(), "{name}: {id} slot reuse");
                assert!(last < Some(slot) || last.is_none(), "{name}: {id} slots out of order");
                last = Some(slot);
            }
        }
        // Every slot — external ones included, since hosts deliver initial
        // inputs under the EXTERNAL producer — maps back to `incoming`.
        let expected: Vec<Option<TaskId>> = task.incoming.iter().map(|s| Some(*s)).collect();
        assert_eq!(rebuilt, expected, "{name}: {id} slot map");

        // Routes: one per outgoing consumer, in slot order, each carrying
        // the destination's shard (or the external marker).
        assert_eq!(pt.routes.len(), task.outgoing.len(), "{name}: {id} fan-out");
        for (slot, dsts) in task.outgoing.iter().enumerate() {
            let routed: Vec<TaskId> = pt.routes[slot].iter().map(|r| r.dst).collect();
            assert_eq!(&routed, dsts, "{name}: {id} slot {slot} destinations");
            for route in &pt.routes[slot] {
                if route.dst.is_external() {
                    assert!(route.is_external(), "{name}: {id} external route not marked");
                } else {
                    assert_eq!(
                        route.shard,
                        map.shard(route.dst),
                        "{name}: {id} -> {} shard",
                        route.dst
                    );
                }
            }
        }
    }

    // Shard-local task lists match local_graph() per shard, as sets (the
    // plan orders by interning index, the procedural walk by id).
    for shard in 0..map.num_shards() {
        let from_plan: BTreeSet<TaskId> =
            plan.local(ShardId(shard)).iter().map(|&ix| plan.task(ix).id()).collect();
        let procedural: BTreeSet<TaskId> =
            graph.local_graph(ShardId(shard), map).iter().map(|t| t.id).collect();
        assert_eq!(from_plan, procedural, "{name}: shard {shard} locals");
    }

    // Graph-level summaries.
    let sorted = |mut v: Vec<TaskId>| {
        v.sort();
        v
    };
    let resolve = |ixs: &[u32]| ixs.iter().map(|&ix| plan.task(ix).id()).collect::<Vec<_>>();
    assert_eq!(
        sorted(resolve(plan.input_tasks())),
        sorted(graph.input_tasks()),
        "{name}: input tasks"
    );
    assert_eq!(
        sorted(resolve(plan.output_tasks())),
        sorted(graph.output_tasks()),
        "{name}: output tasks"
    );
    let cb_set = |v: &[CallbackId]| v.iter().copied().collect::<BTreeSet<_>>();
    assert!(
        cb_set(&graph.callback_ids()).is_subset(&cb_set(plan.callback_ids())),
        "{name}: callback ids"
    );
}

#[test]
fn plans_intern_every_family_losslessly() {
    for (name, graph) in families() {
        for shards in [1u32, 2, 3, 5] {
            let modulo = ModuloMap::new(shards, graph.size() as u64);
            assert_plan_matches(&format!("{name}/mod{shards}"), &*graph, &modulo);
            let ids = graph.ids();
            let scattered =
                FnMap::new(shards, ids, move |t| ShardId((t.0.wrapping_mul(7) % shards as u64) as u32));
            assert_plan_matches(&format!("{name}/scatter{shards}"), &*graph, &scattered);
        }
    }
}

/// Registry where every callback hashes its inputs with the task id, so a
/// wrong route, slot, or placement changes the output bytes.
fn mix_registry(graph: &dyn TaskGraph) -> Registry {
    let mut cbs: Vec<CallbackId> = graph.callback_ids();
    cbs.extend(graph.ids().iter().filter_map(|&id| graph.task(id)).map(|t| t.callback));
    cbs.sort_unstable();
    cbs.dedup();
    let fan_outs: Arc<HashMap<TaskId, usize>> = Arc::new(
        graph.ids().iter().filter_map(|&id| graph.task(id).map(|t| (id, t.fan_out()))).collect(),
    );
    let mut reg = Registry::new();
    for cb in cbs {
        let fan_outs = fan_outs.clone();
        reg.register(cb, move |inputs, id| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for (i, p) in inputs.iter().enumerate() {
                h = (h ^ val(p)).wrapping_mul(0x100_0000_01b3).rotate_left(i as u32 + 1);
            }
            h ^= id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            (0..fan_outs.get(&id).copied().unwrap_or(1)).map(|s| pay(h ^ s as u64)).collect()
        });
    }
    reg
}

fn seeded_inputs(graph: &dyn TaskGraph) -> HashMap<TaskId, Vec<Payload>> {
    graph
        .input_tasks()
        .into_iter()
        .map(|id| {
            let task = graph.task(id).expect("input task exists");
            let externals = task.incoming.iter().filter(|s| s.is_external()).count();
            (id, (0..externals as u64).map(|s| pay(id.0.rotate_left(13) ^ s)).collect())
        })
        .collect()
}

#[test]
fn plan_driven_runs_match_procedural_runs() {
    // Same graph, same inputs: the plan-driven serial controller must
    // byte-match the procedural reference run on every family.
    for (name, graph) in families() {
        let reg = mix_registry(&*graph);
        let inputs = seeded_inputs(&*graph);
        let golden = run_serial(&*graph, &reg, inputs.clone()).unwrap();

        let map = ModuloMap::new(2, graph.size() as u64);
        let plan = Arc::new(ShardPlan::build(&*graph, &map));
        let report = SerialController::new()
            .with_plan(plan)
            .run(&*graph, &map, &reg, inputs)
            .unwrap();
        assert_eq!(canonical_outputs(&report), canonical_outputs(&golden), "{name}");
        assert_eq!(report.stats.tasks_executed as usize, graph.size(), "{name}");
        // A prebuilt plan means the run itself queried the graph zero times.
        assert_eq!(report.stats.perf.task_queries, 0, "{name}: steady-state queries");
    }
}

#[test]
fn outputs_map_is_deterministic_across_rebuilds() {
    // Building the plan twice from the same graph+map yields identical
    // structure (BTreeMap-backed summaries make this byte-stable).
    let graph = KWayMerge::new(9, 3);
    let map = ModuloMap::new(3, graph.size() as u64);
    let a = ShardPlan::build(&graph, &map);
    let b = ShardPlan::build(&graph, &map);
    assert_eq!(a.len(), b.len());
    let dump = |p: &ShardPlan| -> BTreeMap<TaskId, String> {
        p.tasks().iter().map(|pt| (pt.id(), format!("{pt:?}"))).collect()
    };
    assert_eq!(dump(&a), dump(&b));
}
