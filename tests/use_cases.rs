//! Workspace-level end-to-end runs of the paper's three use cases on
//! parallel backends, verified against their respective oracles.

use babelflow::core::{Controller, ModuloMap, TaskGraph};
use babelflow::data::{brain_acquisition, hcci_proxy, BrainParams, HcciParams, Idx3};
use babelflow::graphs::MergeTreeMap;
use babelflow::render::{max_pixel_diff, RenderConfig, RenderParams, TransferFunction};
use babelflow::register::RegisterConfig;
use babelflow::topology::{canonical_partition, merge_segmentations, MergeTreeConfig};

#[test]
fn topology_on_mpi_matches_oracle() {
    let n = 16;
    let grid = hcci_proxy(&HcciParams {
        size: n,
        kernels: 12,
        kernel_radius: 0.1,
        noise_amplitude: 0.2,
        noise_scale: 4,
        seed: 31,
    });
    let cfg = MergeTreeConfig {
        dims: Idx3::new(n, n, n),
        blocks: Idx3::new(2, 2, 2),
        threshold: 0.4,
        valence: 2,
    };
    let graph = cfg.graph();
    let map = MergeTreeMap::new(graph.clone(), 4);
    let report = babelflow::mpi::MpiController::new()
        .run(&graph, &map, &cfg.registry(), cfg.initial_inputs(&grid))
        .unwrap();
    let distributed = merge_segmentations(&cfg.collect_segmentations(&report));
    let oracle = cfg.oracle_partition(&grid);
    assert_eq!(canonical_partition(&distributed), canonical_partition(&oracle));
}

#[test]
fn rendering_on_charm_matches_oracle() {
    let n = 16;
    let grid = hcci_proxy(&HcciParams {
        size: n,
        kernels: 8,
        kernel_radius: 0.12,
        noise_amplitude: 0.1,
        noise_scale: 4,
        seed: 33,
    });
    let cfg = RenderConfig {
        dims: Idx3::new(n, n, n),
        slabs: 4,
        params: RenderParams {
            image: (n as u32, n as u32),
            world: (n, n),
            step: 1.0,
            tf: TransferFunction::default(),
        },
        valence: 2,
    };
    let g = cfg.binary_swap_graph();
    let map = ModuloMap::new(4, g.size() as u64);
    let report = babelflow::charm::CharmController::new(3)
        .run(&g, &map, &cfg.binary_swap_registry(), cfg.initial_inputs(&grid, &g.leaf_ids()))
        .unwrap();
    let img = cfg.final_image(&report);
    assert!(max_pixel_diff(&img, &cfg.oracle_image(&grid)) < 1e-4);
}

#[test]
fn registration_on_legion_recovers_ground_truth() {
    let acq = brain_acquisition(&BrainParams {
        grid: (2, 2),
        tile: 24,
        overlap: 0.25,
        max_jitter: 1,
        noise: 0.01,
        seed: 5,
    });
    let cfg = RegisterConfig::for_acquisition(&acq, 2, 3);
    let graph = cfg.graph();
    let map = ModuloMap::new(3, graph.size() as u64);
    let report = babelflow::legion::LegionSpmdController::new(3)
        .run(&graph, &map, &cfg.registry(), cfg.initial_inputs(&acq))
        .unwrap();
    let pos = cfg.positions(&report);
    for &(v, dev) in &pos.list {
        let t = &acq.tiles[v as usize];
        let t0 = &acq.tiles[0];
        let truth = (
            (t.true_origin.0 - t.nominal_origin.0) - (t0.true_origin.0 - t0.nominal_origin.0),
            (t.true_origin.1 - t.nominal_origin.1) - (t0.true_origin.1 - t0.nominal_origin.1),
            (t.true_origin.2 - t.nominal_origin.2) - (t0.true_origin.2 - t0.nominal_origin.2),
        );
        assert_eq!(dev, truth, "volume {v}");
    }
}

#[test]
fn simulator_reproduces_figure_6_ordering_at_scale() {
    // The headline Fig. 6 relationships, checked at a reduced size so the
    // test stays fast: Original MPI slower than BabelFlow MPI at low core
    // counts; Legion flattens while MPI keeps scaling.
    use babelflow::sim::{simulate, MachineConfig, MergeTreeCost, RuntimeCosts};
    let g = babelflow::graphs::KWayMerge::new(4096, 8);
    let map = ModuloMap::new(128, g.size() as u64);
    let cost = MergeTreeCost::new(g.clone(), 32 * 32 * 32);
    let run = |cores: u32, rc: &RuntimeCosts| {
        let map = ModuloMap::new(cores, g.size() as u64);
        let machine = MachineConfig::shaheen(cores);
        simulate(&g, &|id| babelflow::core::TaskMap::shard(&map, id).0, &cost, &machine, rc)
    };
    let _ = map;

    let orig_128 = run(128, &RuntimeCosts::mpi_blocking());
    let mpi_128 = run(128, &RuntimeCosts::mpi_async());
    assert!(orig_128.makespan_ns >= mpi_128.makespan_ns, "Original MPI not slower at 128");

    let mpi_2048 = run(2048, &RuntimeCosts::mpi_async());
    let legion_2048 = run(2048, &RuntimeCosts::legion_spmd());
    assert!(mpi_2048.makespan_ns < mpi_128.makespan_ns / 4, "MPI fails to strong-scale");
    assert!(
        legion_2048.makespan_ns > 2 * mpi_2048.makespan_ns,
        "Legion should flatten at scale: legion {} vs mpi {}",
        legion_2048.makespan_ns,
        mpi_2048.makespan_ns
    );
}

#[test]
fn conduit_style_payloads_flow_through_any_runtime() {
    // The paper's outlook: "exploit new data models such as Conduit to
    // transparently access simulation data". Tasks below are written
    // purely against the hierarchical DataNode convention — they never see
    // the host's concrete types — and run unchanged on two backends.
    use babelflow::core::{
        canonical_outputs, run_serial, Payload, Registry, TaskId,
    };
    use babelflow::data::{DataNode, Value};
    use babelflow::graphs::Reduction;
    use std::sync::Arc;

    let g = Reduction::new(4, 2);
    let cb = babelflow::core::TaskGraph::callback_ids(&g);
    let mut reg = Registry::new();
    // Leaf: compute the block's mean into `stats/mean`.
    reg.register(cb[0], |inputs, _| {
        let node = inputs[0].extract::<DataNode>().unwrap();
        let (_, grid) = node.to_block("temperature").expect("mesh convention");
        let mean = grid.data.iter().sum::<f32>() as f64 / grid.data.len() as f64;
        let mut out = DataNode::new();
        out.set_path("stats/mean", Value::F64(mean));
        out.set_path("stats/count", Value::I64(grid.data.len() as i64));
        vec![Payload::wrap(out)]
    });
    // Reduce/root: weighted-average the means.
    let combine = |inputs: Vec<Payload>, _id: TaskId| -> Vec<Payload> {
        let mut sum = 0.0f64;
        let mut count = 0i64;
        for p in &inputs {
            let n = p.extract::<DataNode>().unwrap();
            let c = n.as_i64("stats/count").unwrap();
            sum += n.as_f64("stats/mean").unwrap() * c as f64;
            count += c;
        }
        let mut out = DataNode::new();
        out.set_path("stats/mean", Value::F64(sum / count as f64));
        out.set_path("stats/count", Value::I64(count));
        vec![Payload::wrap(out)]
    };
    reg.register(cb[1], combine);
    reg.register(cb[2], combine);

    let inputs: babelflow::core::InitialInputs = g
        .leaf_ids()
        .into_iter()
        .enumerate()
        .map(|(i, id)| {
            let dims = babelflow::data::Idx3::new(4, 4, 4);
            let grid = babelflow::data::Grid3::from_fn(dims, |x, y, z| {
                (i * 100 + x + y + z) as f32
            });
            let node = DataNode::from_block(
                babelflow::data::Idx3::new(0, 0, i * 4),
                "temperature",
                Arc::new(grid.data),
                dims,
            );
            (id, vec![Payload::wrap(node)])
        })
        .collect();

    let serial = run_serial(&g, &reg, inputs.clone()).unwrap();
    let out = serial.outputs[&TaskId(0)][0].extract::<DataNode>().unwrap();
    let mean = out.as_f64("stats/mean").unwrap();
    // Global mean of (i*100 + x+y+z) over 4 blocks of 4^3: 150 + 4.5.
    assert!((mean - 154.5).abs() < 1e-9, "mean = {mean}");

    let map = ModuloMap::new(3, babelflow::core::TaskGraph::size(&g) as u64);
    let r = babelflow::mpi::MpiController::new().run(&g, &map, &reg, inputs).unwrap();
    assert_eq!(canonical_outputs(&r), canonical_outputs(&serial));
}
