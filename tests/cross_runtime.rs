//! Workspace-level integration: the paper's portability guarantee, checked
//! across crates — identical dataflow outputs on every runtime backend,
//! including composed graphs, and (the differential conformance suite at
//! the bottom) identical outputs *under injected faults*.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use babelflow::core::proptest_lite::prelude::*;
use babelflow::core::rng::Rng;
use babelflow::core::{
    canonical_outputs, inject_panics, run_serial, Blob, CallbackId, ChainGraph, Controller,
    FaultPlan, FnMap, Link, ModuloMap, OffsetGraph, Payload, Registry, ShardId, TaskGraph, TaskId,
};
use babelflow::graphs::{BinarySwap, Broadcast, KWayMerge, NeighborGraph, Reduction};

fn val(p: &Payload) -> u64 {
    u64::from_le_bytes(p.extract::<Blob>().unwrap().0.as_slice().try_into().unwrap())
}

fn pay(v: u64) -> Payload {
    Payload::wrap(Blob(v.to_le_bytes().to_vec()))
}

/// Reduce 8 values to a sum, then broadcast the sum back to 8 consumers —
/// a composed graph built with the prefix technique of §III.
fn reduce_then_broadcast() -> (ChainGraph, Registry) {
    let red = Reduction::new(8, 2);
    let bc = Broadcast::new(8, 2).with_callbacks(CallbackId(3), CallbackId(4));
    let red_size = red.size() as u64;
    let root_in_second_space = TaskId(red_size); // broadcast root after offset

    let first: Arc<dyn TaskGraph> = Arc::new(red);
    let second: Arc<dyn TaskGraph> = Arc::new(OffsetGraph::new(Arc::new(bc), red_size, 0));
    let chain = ChainGraph::new(
        first,
        second,
        vec![Link { from: TaskId(0), to: root_in_second_space }],
    );

    let mut reg = Registry::new();
    reg.register(CallbackId(0), |inputs, _| vec![inputs[0].clone()]); // leaf
    reg.register(CallbackId(1), |inputs, _| vec![pay(inputs.iter().map(val).sum())]);
    reg.register(CallbackId(2), |inputs, _| vec![pay(inputs.iter().map(val).sum())]); // root
    reg.register(CallbackId(3), |inputs, _| vec![inputs[0].clone()]); // relay
    reg.register(CallbackId(4), |inputs, _| vec![pay(val(&inputs[0]) + 1)]); // bcast leaf
    (chain, reg)
}

fn inputs(graph: &dyn TaskGraph) -> HashMap<TaskId, Vec<Payload>> {
    graph
        .input_tasks()
        .into_iter()
        .enumerate()
        .map(|(i, id)| (id, vec![pay(i as u64 + 1)]))
        .collect()
}

#[test]
fn composed_graph_runs_identically_on_every_backend() {
    let (chain, reg) = reduce_then_broadcast();
    babelflow::core::assert_valid(&chain);

    let serial = run_serial(&chain, &reg, inputs(&chain)).unwrap();
    // Sum of 1..=8 = 36; every broadcast leaf emits 37.
    assert_eq!(serial.outputs.len(), 8);
    for payloads in serial.outputs.values() {
        assert_eq!(val(&payloads[0]), 37);
    }
    let canon = canonical_outputs(&serial);

    let map = ModuloMap::new(3, 0); // tasks() unused for non-dense ids
    let ids = chain.ids();
    let explicit = babelflow::core::FnMap::new(3, ids, |t| {
        babelflow::core::ShardId((t.0 % 3) as u32)
    });
    let _ = map;

    let r = babelflow::mpi::MpiController::new()
        .run(&chain, &explicit, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canon, "mpi");

    let r = babelflow::mpi::BlockingMpiController::new()
        .run(&chain, &explicit, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canon, "mpi-blocking");

    let r = babelflow::charm::CharmController::new(3)
        .run(&chain, &explicit, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canon, "charm");

    let r = babelflow::legion::LegionSpmdController::new(3)
        .run(&chain, &explicit, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canon, "legion-spmd");

    let r = babelflow::legion::LegionIndexLaunchController::new(3)
        .run(&chain, &explicit, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canon, "legion-il");
}

#[test]
fn over_decomposition_runs_on_a_single_rank() {
    // "Any backend can execute task graphs of arbitrary size, on a single
    // node or even serially."
    let (chain, reg) = reduce_then_broadcast();
    let ids = chain.ids();
    let one = babelflow::core::FnMap::new(1, ids, |_| babelflow::core::ShardId(0));
    let serial = run_serial(&chain, &reg, inputs(&chain)).unwrap();
    let r = babelflow::mpi::MpiController::new()
        .run(&chain, &one, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canonical_outputs(&serial));
    assert_eq!(r.stats.remote_messages, 0, "single rank sends nothing remotely");
}

// ---------------------------------------------------------------------------
// Differential fault-injection conformance suite (the fault-model oracle).
//
// Each case derives, from one seed: a graph from one of the five library
// families, seeded external inputs, a rank count, and a random
// `FaultPlan`. The fault-free serial run is the byte-level golden; every
// backend must then converge to it — the MPI backends under the full
// message-fault plan (drops, duplicates, delays, a killed worker), every
// backend under one-shot callback panics. Failures name the backend and
// the case seed, and the proptest_lite runner prints its stream seed for
// exact replay.
// ---------------------------------------------------------------------------

/// FNV-1a over a byte slice, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A registry binding every callback the graph uses to the same
/// deterministic hash-combiner: output `slot` is a mix of all input bytes,
/// the task id, and the slot index. Any dropped, duplicated, or re-ordered
/// effect anywhere in the dataflow changes the root-level bytes, so
/// byte-matching the serial golden is a whole-run integrity check.
fn hash_registry(graph: Arc<dyn TaskGraph + Send + Sync>) -> Registry {
    // Bind every callback the graph declares (preflight checks the
    // declared set, which can exceed the callbacks actually on tasks).
    let mut cbs: Vec<CallbackId> = graph.callback_ids();
    cbs.extend(graph.ids().iter().filter_map(|&id| graph.task(id)).map(|t| t.callback));
    cbs.sort_unstable();
    cbs.dedup();
    let mut reg = Registry::new();
    for cb in cbs {
        let g = graph.clone();
        reg.register(cb, move |inputs, id| {
            let fan_out = g.task(id).map_or(1, |t| t.fan_out());
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for p in &inputs {
                let blob = p.extract::<Blob>().expect("conformance payloads are blobs");
                h = fnv1a(h, &blob.0).rotate_left(7);
            }
            h ^= id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            (0..fan_out)
                .map(|slot| {
                    let mut x = h ^ (slot as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
                    x ^= x >> 33;
                    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
                    x ^= x >> 29;
                    pay(x)
                })
                .collect()
        });
    }
    reg
}

/// One graph from the five library families, sized small enough that a
/// case stays fast but deep enough to cross ranks.
fn sample_graph(rng: &mut Rng) -> Arc<dyn TaskGraph + Send + Sync> {
    match rng.random_range(0u32..5) {
        0 => {
            let k = rng.random_range(2u64..=3);
            let d = rng.random_range(1u32..=3);
            Arc::new(Reduction::new(k.pow(d), k))
        }
        1 => {
            let k = rng.random_range(2u64..=3);
            let d = rng.random_range(1u32..=3);
            Arc::new(Broadcast::new(k.pow(d), k))
        }
        2 => Arc::new(BinarySwap::new(1 << rng.random_range(1u32..=3))),
        3 => {
            let k = rng.random_range(2u64..=3);
            let d = rng.random_range(1u32..=2);
            Arc::new(KWayMerge::new(k.pow(d), k))
        }
        _ => {
            let gx = rng.random_range(2u64..=3);
            let gy = rng.random_range(1u64..=2);
            let slabs = rng.random_range(1u64..=2);
            Arc::new(NeighborGraph::new(gx, gy, slabs))
        }
    }
}

/// Seed-derived external inputs: one payload per external slot.
fn seeded_inputs(graph: &dyn TaskGraph, seed: u64) -> HashMap<TaskId, Vec<Payload>> {
    graph
        .input_tasks()
        .into_iter()
        .map(|id| {
            let task = graph.task(id).expect("input task exists");
            let externals = task.incoming.iter().filter(|s| s.is_external()).count();
            let payloads = (0..externals as u64)
                .map(|slot| pay(seed ^ id.0.rotate_left(17).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ slot))
                .collect();
            (id, payloads)
        })
        .collect()
}

/// Run one conformance case on all six backends; `Err` names the first
/// diverging backend.
fn run_conformance_case(case_seed: u64) -> Result<(), String> {
    let mut rng = Rng::seed_from_u64(case_seed);
    let graph = sample_graph(&mut rng);
    let ranks = rng.random_range(2u32..=3);
    let input_seed = rng.next_u64();
    let ids = graph.ids();
    let plan = FaultPlan::random(rng.next_u64(), ranks as usize, &ids);

    let reg = hash_registry(graph.clone());
    let golden = run_serial(&*graph, &reg, seeded_inputs(&*graph, input_seed))
        .map_err(|e| format!("fault-free serial golden failed: {e}"))?;
    let canon = canonical_outputs(&golden);

    let map = FnMap::new(ranks, ids, move |t| ShardId((t.0 % ranks as u64) as u32));
    let shard_plan = babelflow::core::ShardPlan::build(&*graph, &map);
    let timeout = Duration::from_secs(4);

    let mut backends: Vec<(&str, Box<dyn Controller>)> = vec![
        ("serial", Box::new(babelflow::core::SerialController::new())),
        (
            "mpi-async",
            Box::new(
                babelflow::mpi::MpiController::new()
                    .with_workers(2)
                    .with_timeout(timeout)
                    .with_faults(plan.clone()),
            ),
        ),
        (
            "mpi-blocking",
            Box::new(
                babelflow::mpi::BlockingMpiController::new()
                    .with_timeout(timeout)
                    .with_faults(plan.message_faults()),
            ),
        ),
        ("charm", Box::new(babelflow::charm::CharmController::new(2).with_timeout(timeout))),
        (
            "legion-spmd",
            Box::new(babelflow::legion::LegionSpmdController::new(2).with_timeout(timeout)),
        ),
        (
            "legion-il",
            Box::new(babelflow::legion::LegionIndexLaunchController::new(2).with_timeout(timeout)),
        ),
    ];

    for (name, ctrl) in &mut backends {
        // Each backend re-arms the one-shot panics: every one of them must
        // absorb the callback fault, not just whichever ran first.
        let poisoned = inject_panics(&reg, &plan);
        let rec = babelflow::trace::TraceRecorder::shared();
        let report = ctrl
            .run_traced(&*graph, &map, &poisoned, seeded_inputs(&*graph, input_seed), rec.clone())
            .map_err(|e| format!("{name} failed under faults: {e}"))?;
        if canonical_outputs(&report) != canon {
            return Err(format!("{name} outputs diverge from the serial golden"));
        }
        if !plan.panic_once.is_empty() && report.stats.recovery.retries == 0 {
            return Err(format!(
                "{name} reported no retries although {} callback panics were armed",
                plan.panic_once.len()
            ));
        }
        // Every conformance case also proves happens-before consistency:
        // each task's first execution is ordered after its producers'.
        let hb = babelflow::verify::check_happens_before(&rec.take(), &shard_plan);
        if !hb.is_clean() {
            return Err(format!("{name} trace violates happens-before: {hb}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_backend_converges_to_the_serial_golden_under_faults(case_seed in any::<u64>()) {
        let res = run_conformance_case(case_seed);
        prop_assert!(res.is_ok(), "case_seed={case_seed:#x}: {}", res.unwrap_err());
    }
}

#[test]
fn conformance_cases_are_deterministic_under_a_fixed_seed() {
    // The same case seed must replay the same graph, inputs, and fault
    // schedule — the property the failure-seed printout relies on.
    let mut rng_a = Rng::seed_from_u64(0xBABE);
    let mut rng_b = Rng::seed_from_u64(0xBABE);
    let ga = sample_graph(&mut rng_a);
    let gb = sample_graph(&mut rng_b);
    assert_eq!(ga.ids(), gb.ids());
    let pa = FaultPlan::random(7, 3, &ga.ids());
    let pb = FaultPlan::random(7, 3, &gb.ids());
    assert_eq!(format!("{pa:?}"), format!("{pb:?}"));
    assert_eq!(
        canonical_outputs(&run_serial(&*ga, &hash_registry(ga.clone()), seeded_inputs(&*ga, 5)).unwrap()),
        canonical_outputs(&run_serial(&*gb, &hash_registry(gb.clone()), seeded_inputs(&*gb, 5)).unwrap()),
    );
    run_conformance_case(0xBABE).unwrap();
}
