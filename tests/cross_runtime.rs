//! Workspace-level integration: the paper's portability guarantee, checked
//! across crates — identical dataflow outputs on every runtime backend,
//! including composed graphs.

use std::collections::HashMap;
use std::sync::Arc;

use babelflow::core::{
    canonical_outputs, run_serial, Blob, CallbackId, ChainGraph, Controller, Link, ModuloMap,
    OffsetGraph, Payload, Registry, TaskGraph, TaskId,
};
use babelflow::graphs::{Broadcast, Reduction};

fn val(p: &Payload) -> u64 {
    u64::from_le_bytes(p.extract::<Blob>().unwrap().0.as_slice().try_into().unwrap())
}

fn pay(v: u64) -> Payload {
    Payload::wrap(Blob(v.to_le_bytes().to_vec()))
}

/// Reduce 8 values to a sum, then broadcast the sum back to 8 consumers —
/// a composed graph built with the prefix technique of §III.
fn reduce_then_broadcast() -> (ChainGraph, Registry) {
    let red = Reduction::new(8, 2);
    let bc = Broadcast::new(8, 2).with_callbacks(CallbackId(3), CallbackId(4));
    let red_size = red.size() as u64;
    let root_in_second_space = TaskId(red_size); // broadcast root after offset

    let first: Arc<dyn TaskGraph> = Arc::new(red);
    let second: Arc<dyn TaskGraph> = Arc::new(OffsetGraph::new(Arc::new(bc), red_size, 0));
    let chain = ChainGraph::new(
        first,
        second,
        vec![Link { from: TaskId(0), to: root_in_second_space }],
    );

    let mut reg = Registry::new();
    reg.register(CallbackId(0), |inputs, _| vec![inputs[0].clone()]); // leaf
    reg.register(CallbackId(1), |inputs, _| vec![pay(inputs.iter().map(val).sum())]);
    reg.register(CallbackId(2), |inputs, _| vec![pay(inputs.iter().map(val).sum())]); // root
    reg.register(CallbackId(3), |inputs, _| vec![inputs[0].clone()]); // relay
    reg.register(CallbackId(4), |inputs, _| vec![pay(val(&inputs[0]) + 1)]); // bcast leaf
    (chain, reg)
}

fn inputs(graph: &dyn TaskGraph) -> HashMap<TaskId, Vec<Payload>> {
    graph
        .input_tasks()
        .into_iter()
        .enumerate()
        .map(|(i, id)| (id, vec![pay(i as u64 + 1)]))
        .collect()
}

#[test]
fn composed_graph_runs_identically_on_every_backend() {
    let (chain, reg) = reduce_then_broadcast();
    babelflow::core::assert_valid(&chain);

    let serial = run_serial(&chain, &reg, inputs(&chain)).unwrap();
    // Sum of 1..=8 = 36; every broadcast leaf emits 37.
    assert_eq!(serial.outputs.len(), 8);
    for payloads in serial.outputs.values() {
        assert_eq!(val(&payloads[0]), 37);
    }
    let canon = canonical_outputs(&serial);

    let map = ModuloMap::new(3, 0); // tasks() unused for non-dense ids
    let ids = chain.ids();
    let explicit = babelflow::core::FnMap::new(3, ids, |t| {
        babelflow::core::ShardId((t.0 % 3) as u32)
    });
    let _ = map;

    let r = babelflow::mpi::MpiController::new()
        .run(&chain, &explicit, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canon, "mpi");

    let r = babelflow::mpi::BlockingMpiController::new()
        .run(&chain, &explicit, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canon, "mpi-blocking");

    let r = babelflow::charm::CharmController::new(3)
        .run(&chain, &explicit, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canon, "charm");

    let r = babelflow::legion::LegionSpmdController::new(3)
        .run(&chain, &explicit, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canon, "legion-spmd");

    let r = babelflow::legion::LegionIndexLaunchController::new(3)
        .run(&chain, &explicit, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canon, "legion-il");
}

#[test]
fn over_decomposition_runs_on_a_single_rank() {
    // "Any backend can execute task graphs of arbitrary size, on a single
    // node or even serially."
    let (chain, reg) = reduce_then_broadcast();
    let ids = chain.ids();
    let one = babelflow::core::FnMap::new(1, ids, |_| babelflow::core::ShardId(0));
    let serial = run_serial(&chain, &reg, inputs(&chain)).unwrap();
    let r = babelflow::mpi::MpiController::new()
        .run(&chain, &one, &reg, inputs(&chain))
        .unwrap();
    assert_eq!(canonical_outputs(&r), canonical_outputs(&serial));
    assert_eq!(r.stats.remote_messages, 0, "single rank sends nothing remotely");
}
